// Binary (de)serialization primitives of the campaign-persistence
// subsystem: bounded little-endian readers/writers and the typed error
// hierarchy every on-disk artifact (recorded corpora, campaign state
// files) reports hostile input through.
//
// Format ground rules, shared by every sable file format:
//   - little-endian fixed-width integers; doubles as their IEEE-754 bit
//     pattern in a u64 (bit-exact round trips — the determinism
//     guarantees extend to serialized accumulator state);
//   - every multi-byte structure is length- or count-prefixed, and every
//     read is bounds-checked against the file size BEFORE it happens, so
//     a truncated or corrupt file throws a typed error instead of
//     reading out of bounds;
//   - writers produce the file atomically (write `path + ".tmp"`, then
//     rename), so a crash mid-checkpoint can never leave a half-written
//     state file under the final name.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace sable {

/// Base of every persistence error: carries the offending file's path so
/// multi-file operations (merge_partials over N worker states) report
/// WHICH input was bad.
class IoError : public Error {
 public:
  IoError(const std::string& path, const std::string& what)
      : Error(what + " [" + path + "]"), path_(path) {}

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// The file ends before a promised structure: header cut short, a shard
/// chunk or accumulator blob running past EOF.
class FileTruncatedError : public IoError {
 public:
  using IoError::IoError;
};

/// Not a sable file of the expected kind, an unsupported format version,
/// or structurally corrupt contents (bad tags, impossible counts).
class BadFileError : public IoError {
 public:
  using IoError::IoError;
};

/// A shard index entry is out of bounds — or, when assembling partial
/// campaign states, two files claim the same canonical shard.
class ShardIndexError : public IoError {
 public:
  using IoError::IoError;
};

/// The file is internally consistent but belongs to a DIFFERENT campaign:
/// spec hash, seed, trace count, shard size or key disagree with what the
/// caller is running.
class ManifestMismatchError : public IoError {
 public:
  using IoError::IoError;
};

/// Growing little-endian byte buffer with an atomic write-out. Campaign
/// state files build entirely in memory (they are O(shards * guesses),
/// small); the corpus writer streams instead (io/corpus.hpp) and uses
/// this only for its header.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// IEEE-754 bit pattern in a u64 — round trips are bit-exact.
  void f64(double v);
  void bytes(const void* data, std::size_t size);
  void f64s(const double* data, std::size_t count);
  /// Zero-pads to the next multiple of `alignment` bytes.
  void pad_to(std::size_t alignment);

  std::size_t offset() const { return buf_.size(); }
  /// Overwrites the u64 previously written at `offset` (index patching).
  void patch_u64(std::size_t offset, std::uint64_t v);

  const std::vector<std::uint8_t>& buffer() const { return buf_; }

  /// Writes the buffer to `path` atomically: `path + ".tmp"` then rename.
  /// Throws IoError on filesystem failure.
  void write_file(const std::string& path) const;

 private:
  std::vector<std::uint8_t> buf_;
};

/// Read-only memory mapping of a whole file (mmap on POSIX, a buffered
/// read fallback elsewhere) — the zero-copy substrate under CorpusReader:
/// a replayed shard's samples are handed to accumulators straight out of
/// the mapping. Throws IoError when the file cannot be opened or mapped.
class MappedFile {
 public:
  explicit MappedFile(const std::string& path);
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;                 // true: munmap on destruction
  std::vector<std::uint8_t> fallback_;  // owns the bytes when not mapped
};

/// Bounds-checked cursor over a byte span. Every accessor verifies the
/// remaining size first and throws FileTruncatedError (tagged with the
/// file's path) on shortfall — the single choke point that makes hostile
/// input handling uniform across formats.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size, std::string path)
      : data_(data), size_(size), path_(std::move(path)) {}
  explicit ByteReader(const MappedFile& file)
      : ByteReader(file.data(), file.size(), file.path()) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  void bytes(void* out, std::size_t size);
  void f64s(double* out, std::size_t count);
  /// Zero-copy view of the next `size` bytes; advances the cursor.
  const std::uint8_t* view(std::size_t size);
  void skip(std::size_t size);
  void seek(std::size_t offset);

  std::size_t offset() const { return offset_; }
  std::size_t size() const { return size_; }
  std::size_t remaining() const { return size_ - offset_; }
  const std::string& path() const { return path_; }

  /// Throws FileTruncatedError unless `size` more bytes are available.
  void require(std::size_t size) const;
  /// Reads a count that is about to size an allocation of `elem_size`-byte
  /// elements and validates it against the bytes actually remaining, so a
  /// corrupt length field throws BadFileError instead of driving a
  /// multi-gigabyte allocation.
  std::uint64_t checked_count(std::size_t elem_size);

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
  std::string path_;
};

}  // namespace sable
