// Dense truth tables for functional verification.
//
// Every synthesized network is checked exhaustively against the truth table
// of its source expression; the paper's gates have at most a handful of
// inputs, so 2^n enumeration is the honest and complete check.
#pragma once

#include <cstdint>
#include <vector>

#include "expr/expression.hpp"

namespace sable {

/// Truth table over `num_vars` inputs, bit i = f(assignment i).
/// Assignment bit k of index i is the value of variable k.
class TruthTable {
 public:
  static constexpr std::size_t kMaxVars = 20;

  explicit TruthTable(std::size_t num_vars);

  std::size_t num_vars() const { return num_vars_; }
  std::size_t num_rows() const { return std::size_t{1} << num_vars_; }

  bool get(std::size_t row) const;
  void set(std::size_t row, bool value);

  /// Number of rows where the function is 1.
  std::size_t popcount() const;

  bool operator==(const TruthTable& other) const = default;

  /// Complement of this function.
  TruthTable complemented() const;

 private:
  std::size_t num_vars_;
  std::vector<std::uint64_t> bits_;
};

/// Evaluates `e` on one assignment (bit k of `assignment` = variable k).
bool evaluate(const ExprPtr& e, std::uint64_t assignment);

/// Full truth table of `e` over variables [0, num_vars).
TruthTable table_of(const ExprPtr& e, std::size_t num_vars);

/// Semantic equivalence over the given variable count.
bool equivalent(const ExprPtr& a, const ExprPtr& b, std::size_t num_vars);

}  // namespace sable
