// Thread-count invariance of the sharded TraceEngine and correctness of
// the mergeable streaming accumulators.
//
// The contract under test: a campaign is a fixed sequence of shards whose
// traces and accumulator merges depend only on the campaign options —
// never on the worker count or scheduling — so every result below must be
// bit-identical across num_threads ∈ {1, 2, 7, hardware_concurrency}; and
// merge() must agree with sequential accumulation to ~1e-12 relative.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <iterator>
#include <thread>
#include <vector>

#include "crypto/target.hpp"
#include "dpa/attack.hpp"
#include "dpa/mtd.hpp"
#include "dpa/streaming.hpp"
#include "engine/trace_engine.hpp"
#include "power/stats.hpp"
#include "util/cpu_dispatch.hpp"
#include "util/rng.hpp"

namespace sable {
namespace {

const Technology kTech = Technology::generic_180nm();

std::vector<std::size_t> thread_counts_under_test() {
  return {1, 2, 7,
          std::max<std::size_t>(1, std::thread::hardware_concurrency())};
}

// Multi-shard campaign: 3000 traces over 448-trace shards = 7 shards, one
// partial tail, so the merge path is genuinely exercised.
CampaignOptions sharded_options() {
  CampaignOptions options;
  options.num_traces = 3000;
  options.key = {0xB};
  options.noise_sigma = 2e-16;
  options.seed = 0x5EED;
  options.shard_size = 448;
  return options;
}

TEST(EngineDeterminismTest, RunIsBitIdenticalAcrossThreadCounts) {
  TraceEngine reference_engine(present_spec(), LogicStyle::kStaticCmos,
                               kTech);
  CampaignOptions options = sharded_options();
  options.num_threads = 1;
  const TraceSet reference = reference_engine.run(options);
  for (std::size_t threads : thread_counts_under_test()) {
    TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
    options.num_threads = threads;
    const TraceSet traces = engine.run(options);
    ASSERT_EQ(traces.size(), reference.size()) << threads;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(traces.plaintexts[i], reference.plaintexts[i])
          << "threads " << threads << " trace " << i;
      ASSERT_EQ(traces.samples[i], reference.samples[i])
          << "threads " << threads << " trace " << i;
    }
  }
}

TEST(EngineDeterminismTest, StreamDeliversCanonicalOrderAcrossThreadCounts) {
  CampaignOptions options = sharded_options();
  options.num_threads = 1;
  TraceEngine reference_engine(present_spec(), LogicStyle::kSablGenuine,
                               kTech);
  const TraceSet reference = reference_engine.run(options);
  for (std::size_t threads : thread_counts_under_test()) {
    TraceEngine engine(present_spec(), LogicStyle::kSablGenuine, kTech);
    options.num_threads = threads;
    TraceSet collected;
    collected.reserve(options.num_traces);
    engine.stream(options,
                  [&](const std::uint8_t* pts, const double* samples,
                      std::size_t n) { collected.add_batch(pts, samples, n); });
    ASSERT_EQ(collected.size(), reference.size()) << threads;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(collected.plaintexts[i], reference.plaintexts[i])
          << "threads " << threads << " trace " << i;
      ASSERT_EQ(collected.samples[i], reference.samples[i])
          << "threads " << threads << " trace " << i;
    }
  }
}

TEST(EngineDeterminismTest, CpaCampaignIsBitIdenticalAcrossThreadCounts) {
  CampaignOptions options = sharded_options();
  options.num_threads = 1;
  const AttackSelector selector{.model = PowerModel::kHammingWeight};
  TraceEngine reference_engine(present_spec(), LogicStyle::kStaticCmos,
                               kTech);
  const AttackResult reference =
      reference_engine.cpa_campaign(options, selector);
  EXPECT_EQ(reference.best_guess, options.key[0]);
  for (std::size_t threads : thread_counts_under_test()) {
    TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
    options.num_threads = threads;
    const AttackResult result = engine.cpa_campaign(options, selector);
    ASSERT_EQ(result.score.size(), reference.score.size());
    for (std::size_t g = 0; g < reference.score.size(); ++g) {
      // EXPECT_EQ on doubles is exact equality: bit-identical, not close.
      EXPECT_EQ(result.score[g], reference.score[g])
          << "threads " << threads << " guess " << g;
    }
    EXPECT_EQ(result.best_guess, reference.best_guess) << threads;
    EXPECT_EQ(result.margin, reference.margin) << threads;
  }
}

TEST(EngineDeterminismTest, DomCampaignIsBitIdenticalAcrossThreadCounts) {
  CampaignOptions options = sharded_options();
  options.num_threads = 1;
  TraceEngine reference_engine(present_spec(), LogicStyle::kStaticCmos,
                               kTech);
  const AttackResult reference =
      reference_engine.dom_campaign(options, AttackSelector{.bit = 0});
  for (std::size_t threads : thread_counts_under_test()) {
    TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
    options.num_threads = threads;
    const AttackResult result =
        engine.dom_campaign(options, AttackSelector{.bit = 0});
    ASSERT_EQ(result.score.size(), reference.score.size());
    for (std::size_t g = 0; g < reference.score.size(); ++g) {
      EXPECT_EQ(result.score[g], reference.score[g])
          << "threads " << threads << " guess " << g;
    }
  }
}

TEST(EngineDeterminismTest, MtdCampaignIsBitIdenticalAcrossThreadCounts) {
  CampaignOptions options = sharded_options();
  options.num_threads = 1;
  const auto checkpoints = default_checkpoints(options.num_traces);
  TraceEngine reference_engine(present_spec(), LogicStyle::kStaticCmos,
                               kTech);
  const AttackSelector selector{.model = PowerModel::kHammingWeight};
  const MtdResult reference =
      reference_engine.mtd_campaign(options, selector, checkpoints);
  EXPECT_TRUE(reference.disclosed);
  for (std::size_t threads : thread_counts_under_test()) {
    TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
    options.num_threads = threads;
    const MtdResult result =
        engine.mtd_campaign(options, selector, checkpoints);
    EXPECT_EQ(result.disclosed, reference.disclosed) << threads;
    EXPECT_EQ(result.mtd, reference.mtd) << threads;
    ASSERT_EQ(result.rank_history.size(), reference.rank_history.size());
    for (std::size_t i = 0; i < reference.rank_history.size(); ++i) {
      EXPECT_EQ(result.rank_history[i], reference.rank_history[i])
          << "threads " << threads << " checkpoint " << i;
    }
  }
}

// ---- accumulator merges ---------------------------------------------------

TraceSet cmos_traces(std::size_t count, std::uint8_t key, std::uint64_t seed) {
  SboxTarget target(present_spec(), LogicStyle::kStaticCmos, kTech);
  Rng rng(seed);
  TraceSet traces;
  traces.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto pt = static_cast<std::uint8_t>(rng.below(16));
    traces.add(pt, target.trace(pt, key, 2e-16, rng));
  }
  return traces;
}

TEST(MergeTest, OnlineMomentsMergeMatchesSequential) {
  Rng rng(0x9011);
  std::vector<double> xs(5000);
  // Trace-scale magnitudes: ~1e-13 with ~1e-15 variation, the regime the
  // merged co-moments must survive.
  for (auto& x : xs) x = 1e-13 + 1e-15 * rng.gaussian();
  OnlineMoments sequential;
  for (double x : xs) sequential.add(x);
  OnlineMoments merged;
  for (std::size_t start : {std::size_t{0}, std::size_t{1111},
                            std::size_t{1112}, std::size_t{4000}}) {
    // uneven, adjacent partitions
    const std::size_t end =
        start == 0 ? 1111 : start == 1111 ? 1112 : start == 1112 ? 4000 : 5000;
    OnlineMoments part;
    for (std::size_t i = start; i < end; ++i) part.add(xs[i]);
    merged.merge(part);
  }
  EXPECT_EQ(merged.count(), sequential.count());
  EXPECT_NEAR(merged.mean(), sequential.mean(),
              1e-12 * std::fabs(sequential.mean()));
  EXPECT_NEAR(merged.m2(), sequential.m2(),
              1e-12 * std::fabs(sequential.m2()));
}

TEST(MergeTest, StreamingCpaMergeMatchesSequential) {
  const SboxSpec spec = present_spec();
  const TraceSet traces = cmos_traces(4000, 0x6, 0xCAB1E);
  StreamingCpa sequential(spec, PowerModel::kHammingWeight);
  sequential.add_batch(traces.plaintexts.data(), traces.samples.data(),
                       traces.size());
  StreamingCpa merged(spec, PowerModel::kHammingWeight);
  const std::size_t bounds[] = {0, 700, 701, 2048, 4000};
  for (std::size_t p = 0; p + 1 < std::size(bounds); ++p) {
    StreamingCpa part(spec, PowerModel::kHammingWeight);
    part.add_batch(traces.plaintexts.data() + bounds[p],
                   traces.samples.data() + bounds[p],
                   bounds[p + 1] - bounds[p]);
    merged.merge(part);
  }
  EXPECT_EQ(merged.count(), sequential.count());
  const AttackResult a = merged.result();
  const AttackResult b = sequential.result();
  ASSERT_EQ(a.score.size(), b.score.size());
  for (std::size_t g = 0; g < b.score.size(); ++g) {
    EXPECT_NEAR(a.score[g], b.score[g], 1e-12) << g;
  }
  EXPECT_EQ(a.best_guess, b.best_guess);
}

TEST(MergeTest, StreamingDomMergeMatchesSequential) {
  const SboxSpec spec = present_spec();
  const TraceSet traces = cmos_traces(3000, 0x9, 0xD0D1);
  for (std::size_t bit = 0; bit < 2; ++bit) {
    StreamingDom sequential(spec, bit);
    sequential.add_batch(traces.plaintexts.data(), traces.samples.data(),
                         traces.size());
    StreamingDom merged(spec, bit);
    const std::size_t bounds[] = {0, 123, 2000, 3000};
    for (std::size_t p = 0; p + 1 < std::size(bounds); ++p) {
      StreamingDom part(spec, bit);
      part.add_batch(traces.plaintexts.data() + bounds[p],
                     traces.samples.data() + bounds[p],
                     bounds[p + 1] - bounds[p]);
      merged.merge(part);
    }
    EXPECT_EQ(merged.count(), sequential.count());
    const AttackResult a = merged.result();
    const AttackResult b = sequential.result();
    for (std::size_t g = 0; g < b.score.size(); ++g) {
      EXPECT_NEAR(a.score[g], b.score[g], 1e-12 * (1.0 + b.score[g])) << g;
    }
  }
}

TEST(MergeTest, StreamingMultiCpaMergeMatchesSequential) {
  const SboxSpec spec = present_spec();
  SboxTarget target(spec, LogicStyle::kSablGenuine, kTech);
  DifferentialCircuitSim sim(target.circuit());
  Rng rng(0x3317);
  const std::uint8_t key = 0x4;
  MultiTraceSet traces;
  for (std::size_t i = 0; i < 1200; ++i) {
    const auto pt = static_cast<std::uint8_t>(rng.below(16));
    SampledCycleResult cycle =
        sim.cycle_sampled(static_cast<std::uint8_t>(pt ^ key));
    for (auto& v : cycle.level_energy) v += 1e-16 * rng.gaussian();
    traces.add(pt, cycle.level_energy);
  }
  StreamingMultiCpa sequential(spec, PowerModel::kHammingWeight,
                               traces.width);
  for (std::size_t t = 0; t < traces.size(); ++t) {
    sequential.add(traces.plaintexts[t],
                   traces.samples.data() + t * traces.width);
  }
  StreamingMultiCpa merged(spec, PowerModel::kHammingWeight, traces.width);
  const std::size_t bounds[] = {0, 311, 900, 1200};
  for (std::size_t p = 0; p + 1 < std::size(bounds); ++p) {
    StreamingMultiCpa part(spec, PowerModel::kHammingWeight, traces.width);
    for (std::size_t t = bounds[p]; t < bounds[p + 1]; ++t) {
      part.add(traces.plaintexts[t], traces.samples.data() + t * traces.width);
    }
    merged.merge(part);
  }
  const MultiAttackResult a = merged.result();
  const MultiAttackResult b = sequential.result();
  ASSERT_EQ(a.combined.score.size(), b.combined.score.size());
  for (std::size_t g = 0; g < b.combined.score.size(); ++g) {
    EXPECT_NEAR(a.combined.score[g], b.combined.score[g], 1e-12) << g;
  }
  EXPECT_EQ(a.best_sample, b.best_sample);
}

TEST(MergeTest, ShardedMtdMatchesStreamingMtd) {
  const SboxSpec spec = present_spec();
  const std::uint8_t key = 0xB;
  const TraceSet traces = cmos_traces(3000, key, 0x17D8);
  const auto checkpoints = default_checkpoints(traces.size());

  StreamingMtd sequential(StreamingCpa(spec, PowerModel::kHammingWeight), key,
                          checkpoints);
  sequential.add_batch(traces.plaintexts.data(), traces.samples.data(),
                       traces.size());
  const MtdResult reference = sequential.result();

  // Feed ShardedMtd exactly as the engine does: 512-trace shards, partial
  // snapshots at in-shard checkpoints, full accumulators appended after.
  ShardedMtd sharded(key);
  const std::size_t shard_size = 512;
  std::vector<std::size_t> ladder(checkpoints);
  std::sort(ladder.begin(), ladder.end());
  for (std::size_t start = 0; start < traces.size(); start += shard_size) {
    const std::size_t count = std::min(shard_size, traces.size() - start);
    StreamingCpa acc(spec, PowerModel::kHammingWeight);
    std::size_t done = 0;
    for (std::size_t c : ladder) {
      if (c <= start || c > start + count || c < 2) continue;
      acc.add_batch(traces.plaintexts.data() + start + done,
                    traces.samples.data() + start + done, c - start - done);
      done = c - start;
      sharded.checkpoint(c, acc);
    }
    acc.add_batch(traces.plaintexts.data() + start + done,
                  traces.samples.data() + start + done, count - done);
    sharded.append(acc);
  }
  const MtdResult result = sharded.result();
  EXPECT_EQ(result.disclosed, reference.disclosed);
  EXPECT_EQ(result.mtd, reference.mtd);
  ASSERT_EQ(result.rank_history.size(), reference.rank_history.size());
  for (std::size_t i = 0; i < reference.rank_history.size(); ++i) {
    EXPECT_EQ(result.rank_history[i], reference.rank_history[i]) << i;
  }
}

// The engine's attack reduction is the fixed-shape binary merge tree —
// not a left fold — and must be reproducible from the per-shard
// accumulators alone: accumulate every shard by hand in canonical order,
// reduce with merge_shard_tree, and require BIT-IDENTICAL scores.
TEST(MergeTest, EngineCpaEqualsFixedShapeTreeMerge) {
  const SboxSpec spec = present_spec();
  CampaignOptions options = sharded_options();
  TraceEngine engine(spec, LogicStyle::kStaticCmos, kTech);
  const TraceSet traces = engine.run(options);

  const std::size_t shard_size = campaign_shard_size(options);
  std::vector<StreamingCpa> shards;
  for (std::size_t start = 0; start < traces.size(); start += shard_size) {
    const std::size_t count = std::min(shard_size, traces.size() - start);
    StreamingCpa acc(spec, PowerModel::kHammingWeight);
    // The pipeline feeds each shard through the block-factored path.
    acc.add_block(traces.plaintexts.data() + start,
                  traces.samples.data() + start, count);
    shards.push_back(std::move(acc));
  }
  ASSERT_GT(shards.size(), 2u);
  const AttackResult tree = merge_shard_tree(std::move(shards)).result();

  TraceEngine engine2(spec, LogicStyle::kStaticCmos, kTech);
  const AttackResult campaign = engine2.cpa_campaign(
      options, AttackSelector{.model = PowerModel::kHammingWeight});
  ASSERT_EQ(campaign.score.size(), tree.score.size());
  for (std::size_t g = 0; g < tree.score.size(); ++g) {
    EXPECT_EQ(campaign.score[g], tree.score[g]) << g;
  }
  EXPECT_EQ(campaign.best_guess, tree.best_guess);
  EXPECT_EQ(campaign.margin, tree.margin);
}

// ---- round targets --------------------------------------------------------

// Distinct subkeys so attacking instance i is distinguishable from
// attacking any other instance.
std::vector<std::size_t> round_subkeys(std::size_t n) {
  std::vector<std::size_t> keys(n);
  for (std::size_t i = 0; i < n; ++i) keys[i] = (i * 7 + 3) & 0xF;
  return keys;
}

// The acceptance contract of the round-target redesign: a full 16-S-box
// PRESENT layer in the paper's enhanced style, attacked on one subkey
// through the selector API, is bit-identical for any worker count. Every
// worker runs a RoundTarget::clone(), so this also pins clone() fidelity
// under threading.
TEST(EngineDeterminismTest, RoundCpaCampaignBitIdenticalAcrossThreadCounts) {
  const RoundSpec round = present_round(16, LogicStyle::kSablEnhanced);
  CampaignOptions options;
  options.num_traces = 1500;
  options.key = round.pack_subkeys(round_subkeys(16));
  options.noise_sigma = 2e-16;
  options.seed = 0x16BEEF;
  options.shard_size = 448;
  options.num_threads = 1;
  const AttackSelector selector{.sbox_index = 3,
                                .model = PowerModel::kHammingWeight};
  TraceEngine reference_engine(round, kTech);
  const AttackResult reference =
      reference_engine.cpa_campaign(options, selector);
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, hw}) {
    TraceEngine engine(round, kTech);
    options.num_threads = threads;
    const AttackResult result = engine.cpa_campaign(options, selector);
    ASSERT_EQ(result.score.size(), reference.score.size());
    for (std::size_t g = 0; g < reference.score.size(); ++g) {
      EXPECT_EQ(result.score[g], reference.score[g])
          << "threads " << threads << " guess " << g;
    }
    EXPECT_EQ(result.best_guess, reference.best_guess) << threads;
    EXPECT_EQ(result.margin, reference.margin) << threads;
  }
}

// The lane-width contract at full round scale: a 16-S-box PRESENT layer
// in the paper's enhanced style must produce bit-identical CPA scores for
// every compiled-in lane width crossed with several worker counts — the
// word the kernel batches with and the threads the shards land on are
// both pure throughput knobs. One engine serves every run, so this also
// exercises the persistent worker pool and the lazily derived per-width
// target variants.
TEST(EngineDeterminismTest, RoundCpaCampaignBitIdenticalAcrossLaneWidths) {
  const RoundSpec round = present_round(16, LogicStyle::kSablEnhanced);
  CampaignOptions options;
  options.num_traces = 900;
  options.key = round.pack_subkeys(round_subkeys(16));
  options.noise_sigma = 2e-16;
  options.seed = 0x16A8E5;
  options.shard_size = 448;
  options.num_threads = 1;
  options.lane_width = 64;
  const AttackSelector selector{.sbox_index = 5,
                                .model = PowerModel::kHammingWeight};
  TraceEngine engine(round, kTech);
  const AttackResult reference = engine.cpa_campaign(options, selector);
  for (std::size_t width : runtime_lane_widths()) {
    for (std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
      options.lane_width = width;
      options.num_threads = threads;
      const AttackResult result = engine.cpa_campaign(options, selector);
      ASSERT_EQ(result.score.size(), reference.score.size());
      for (std::size_t g = 0; g < reference.score.size(); ++g) {
        EXPECT_EQ(result.score[g], reference.score[g])
            << "width " << width << " threads " << threads << " guess " << g;
      }
      EXPECT_EQ(result.best_guess, reference.best_guess)
          << "width " << width << " threads " << threads;
      EXPECT_EQ(result.margin, reference.margin)
          << "width " << width << " threads " << threads;
    }
  }
}

// The new distinguisher pipeline inherits the determinism contract: a
// second-order centered-product campaign must be bit-identical across
// every compiled-in lane width crossed with several worker counts — the
// fourth-order co-moment merges run through the same fixed-shape tree.
TEST(EngineDeterminismTest, SecondOrderCampaignBitIdenticalAcrossThreadsAndWidths) {
  const RoundSpec round = present_round(2, LogicStyle::kStaticCmos);
  CampaignOptions options;
  options.num_traces = 1200;
  options.key = round.pack_subkeys(round_subkeys(2));
  options.noise_sigma = 2e-16;
  options.seed = 0x20CDE;
  options.shard_size = 448;
  options.num_threads = 1;
  options.lane_width = 64;
  const AttackSelector selector{.sbox_index = 1,
                                .model = PowerModel::kHammingWeight};
  TraceEngine engine(round, kTech);
  const SecondOrderAttackResult reference =
      engine.second_order_cpa_campaign(options, selector);
  for (std::size_t width : runtime_lane_widths()) {
    for (std::size_t threads :
         {std::size_t{1}, std::size_t{2},
          std::max<std::size_t>(1, std::thread::hardware_concurrency())}) {
      options.lane_width = width;
      options.num_threads = threads;
      const SecondOrderAttackResult result =
          engine.second_order_cpa_campaign(options, selector);
      ASSERT_EQ(result.combined.score.size(),
                reference.combined.score.size());
      for (std::size_t g = 0; g < reference.combined.score.size(); ++g) {
        EXPECT_EQ(result.combined.score[g], reference.combined.score[g])
            << "width " << width << " threads " << threads << " guess " << g;
      }
      EXPECT_EQ(result.combined.best_guess, reference.combined.best_guess);
      EXPECT_EQ(result.best_pair_first, reference.best_pair_first);
      EXPECT_EQ(result.best_pair_second, reference.best_pair_second);
    }
  }
}

// One-pass multi-selector campaigns (every subkey from one simulation)
// carry the same guarantee: scores per subkey bit-identical across
// num_threads × lane_width.
TEST(EngineDeterminismTest, AllSubkeysCampaignBitIdenticalAcrossThreadsAndWidths) {
  const RoundSpec round = present_round(4, LogicStyle::kSablGenuine);
  CampaignOptions options;
  options.num_traces = 1200;
  options.key = round.pack_subkeys(round_subkeys(4));
  options.noise_sigma = 2e-16;
  options.seed = 0xA11CDE;
  options.shard_size = 448;
  options.num_threads = 1;
  options.lane_width = 64;
  TraceEngine engine(round, kTech);
  const std::vector<AttackResult> reference =
      engine.cpa_campaign_all_subkeys(options, PowerModel::kHammingWeight);
  ASSERT_EQ(reference.size(), 4u);
  for (std::size_t width : runtime_lane_widths()) {
    for (std::size_t threads :
         {std::size_t{1}, std::size_t{2},
          std::max<std::size_t>(1, std::thread::hardware_concurrency())}) {
      options.lane_width = width;
      options.num_threads = threads;
      const std::vector<AttackResult> results =
          engine.cpa_campaign_all_subkeys(options,
                                          PowerModel::kHammingWeight);
      ASSERT_EQ(results.size(), reference.size());
      for (std::size_t i = 0; i < reference.size(); ++i) {
        for (std::size_t g = 0; g < reference[i].score.size(); ++g) {
          EXPECT_EQ(results[i].score[g], reference[i].score[g])
              << "width " << width << " threads " << threads << " sbox " << i
              << " guess " << g;
        }
        EXPECT_EQ(results[i].best_guess, reference[i].best_guess)
            << "width " << width << " threads " << threads << " sbox " << i;
      }
    }
  }
}

// shard_size = 0 engages the autotuner. The derived shard size is a pure
// function of num_traces (see campaign_shard_size), never of the worker
// count, the lane width or the machine — so autotuned campaigns must
// carry the exact same bit-identity guarantee as pinned ones: same
// traces, same CPA scores, for every thread count. 3000 traces autotune
// to 1024-trace shards, so the merge path is genuinely multi-shard.
TEST(EngineDeterminismTest, AutotunedShardsBitIdenticalAcrossThreadCounts) {
  CampaignOptions options = sharded_options();
  options.shard_size = 0;  // autotune
  options.num_threads = 1;
  const AttackSelector selector{.model = PowerModel::kHammingWeight};
  TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
  const TraceSet reference = engine.run(options);
  const AttackResult cpa_reference = engine.cpa_campaign(options, selector);
  EXPECT_EQ(cpa_reference.best_guess, options.key[0]);
  for (std::size_t threads : thread_counts_under_test()) {
    options.num_threads = threads;
    const TraceSet traces = engine.run(options);
    ASSERT_EQ(traces.size(), reference.size()) << threads;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(traces.plaintexts[i], reference.plaintexts[i])
          << "threads " << threads << " trace " << i;
      ASSERT_EQ(traces.samples[i], reference.samples[i])
          << "threads " << threads << " trace " << i;
    }
    const AttackResult cpa = engine.cpa_campaign(options, selector);
    ASSERT_EQ(cpa.score.size(), cpa_reference.score.size());
    for (std::size_t g = 0; g < cpa_reference.score.size(); ++g) {
      EXPECT_EQ(cpa.score[g], cpa_reference.score[g])
          << "threads " << threads << " guess " << g;
    }
    EXPECT_EQ(cpa.best_guess, cpa_reference.best_guess) << threads;
    EXPECT_EQ(cpa.margin, cpa_reference.margin) << threads;
  }
}

// The runtime-dispatch contract: the SAME campaign through the SAME
// engine must stream bit-identical traces and CPA scores whichever kernel
// tier dispatch lands on — portable, AVX2 or the widest the machine has —
// crossed with the lane widths each tier offers and several worker
// counts. ScopedDispatchTierCap forces the lower tiers on one machine;
// lane_width = 0 additionally pins that "widest" resolves per tier.
TEST(EngineDeterminismTest, CampaignsBitIdenticalAcrossDispatchTiers) {
  TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
  CampaignOptions options = sharded_options();
  options.num_threads = 1;
  options.lane_width = 64;
  const TraceSet reference = engine.run(options);
  const AttackSelector selector{.model = PowerModel::kHammingWeight};
  const AttackResult cpa_reference = engine.cpa_campaign(options, selector);
  for (DispatchTier tier : {DispatchTier::kPortable, DispatchTier::kAvx2,
                            DispatchTier::kAvx512}) {
    ScopedDispatchTierCap cap(tier);
    std::vector<std::size_t> widths = runtime_lane_widths();
    widths.push_back(0);  // widest-at-runtime under this tier
    for (std::size_t width : widths) {
      for (std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
        options.lane_width = width;
        options.num_threads = threads;
        const TraceSet traces = engine.run(options);
        ASSERT_EQ(traces.size(), reference.size());
        for (std::size_t i = 0; i < reference.size(); ++i) {
          ASSERT_EQ(traces.samples[i], reference.samples[i])
              << "tier " << to_string(tier) << " width " << width
              << " threads " << threads << " trace " << i;
        }
        const AttackResult cpa = engine.cpa_campaign(options, selector);
        ASSERT_EQ(cpa.score.size(), cpa_reference.score.size());
        for (std::size_t g = 0; g < cpa_reference.score.size(); ++g) {
          EXPECT_EQ(cpa.score[g], cpa_reference.score[g])
              << "tier " << to_string(tier) << " width " << width
              << " threads " << threads << " guess " << g;
        }
        EXPECT_EQ(cpa.best_guess, cpa_reference.best_guess);
        EXPECT_EQ(cpa.margin, cpa_reference.margin);
      }
    }
  }
}

// RoundTarget::clone() must be state-free: after disturbing the original,
// a clone's traces equal a freshly constructed target's, bit for bit.
TEST(CloneTest, ClonedRoundTargetMatchesFreshTarget) {
  const RoundSpec round = present_round(3, LogicStyle::kStaticCmos);
  const std::vector<std::uint8_t> key = round.pack_subkeys({0x2, 0xB, 0x5});
  RoundTarget original(round, kTech);
  Rng warmup(0x77);
  std::vector<std::uint8_t> state(round.state_bytes(), 0);
  for (int i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < round.num_sboxes(); ++j) {
      round.set_sub_word(state.data(), j, warmup.below(16));
    }
    original.trace(state.data(), key.data(), 0.0, warmup);
  }
  RoundTarget cloned = original.clone();
  RoundTarget fresh(round, kTech);
  Rng rng_a(0x88);
  Rng rng_b(0x88);
  Rng pts(0x99);
  for (int i = 0; i < 64; ++i) {
    for (std::size_t j = 0; j < round.num_sboxes(); ++j) {
      round.set_sub_word(state.data(), j, pts.below(16));
    }
    EXPECT_EQ(cloned.trace(state.data(), key.data(), 1e-16, rng_a),
              fresh.trace(state.data(), key.data(), 1e-16, rng_b))
        << i;
  }
}

// clone() must produce a target whose traces match a freshly constructed
// one — no hidden shared state with its source.
TEST(CloneTest, ClonedTargetMatchesFreshTarget) {
  for (LogicStyle style :
       {LogicStyle::kStaticCmos, LogicStyle::kSablGenuine,
        LogicStyle::kSablFullyConnected, LogicStyle::kWddlMismatched}) {
    SboxTarget original(present_spec(), style, kTech);
    // Disturb the original's state so a state-sharing clone would differ.
    Rng warmup(0x11);
    for (int i = 0; i < 10; ++i) {
      original.trace(static_cast<std::uint8_t>(warmup.below(16)), 0x5, 0.0,
                     warmup);
    }
    SboxTarget cloned = original.clone();
    SboxTarget fresh(present_spec(), style, kTech);
    Rng rng_a(0x22);
    Rng rng_b(0x22);
    for (int i = 0; i < 64; ++i) {
      const auto pt = static_cast<std::uint8_t>(i % 16);
      EXPECT_EQ(cloned.trace(pt, 0x5, 1e-16, rng_a),
                fresh.trace(pt, 0x5, 1e-16, rng_b))
          << to_string(style) << " trace " << i;
    }
  }
}

}  // namespace
}  // namespace sable
