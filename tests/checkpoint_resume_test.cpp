// Checkpoint/resume determinism: a campaign interrupted after K shards
// and resumed from its checkpoint file must be bit-identical to the
// uninterrupted run — across thread counts and batch lane widths, for
// the scalar distinguishers AND the ordered MTD fold. This holds only
// because checkpoints store RAW per-shard accumulator states: with 7
// shards (non-power-of-2) the fixed-shape merge tree is NOT a left
// fold, so persisting merged prefixes would silently change the
// floating-point reduction order on resume.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "crypto/sboxes.hpp"
#include "dpa/distinguisher.hpp"
#include "dpa/mtd.hpp"
#include "engine/trace_engine.hpp"
#include "io/manifest.hpp"
#include "io/serial.hpp"
#include "util/cpu_dispatch.hpp"

namespace sable {
namespace {

const Technology kTech = Technology::generic_180nm();

// 3000 traces over 448-trace shards: 7 shards with a ragged tail.
CampaignOptions resume_options() {
  CampaignOptions options;
  options.num_traces = 3000;
  options.key = {0xB};
  options.noise_sigma = 2e-16;
  options.seed = 0x5EED;
  options.shard_size = 448;
  return options;
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "checkpoint_resume_" + name;
}

void expect_same_scores(const std::vector<double>& a,
                        const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t g = 0; g < a.size(); ++g) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[g]),
              std::bit_cast<std::uint64_t>(b[g]))
        << "guess " << g;
  }
}

struct AttackSet {
  CpaDistinguisher cpa;
  DomDistinguisher dom;
  MtdDistinguisher mtd;
};

AttackSet make_attacks(const TraceEngine& engine,
                       const CampaignOptions& options) {
  const AttackSelector selector{.model = PowerModel::kHammingWeight};
  return AttackSet{
      CpaDistinguisher(engine.spec(), selector),
      DomDistinguisher(engine.spec(),
                       AttackSelector{.model = PowerModel::kHammingWeight,
                                      .bit = 2}),
      MtdDistinguisher(engine.spec(), selector, options.key[0],
                       default_checkpoints(options.num_traces),
                       options.num_traces)};
}

TEST(CheckpointResumeTest, ResumedRunIsBitIdenticalAcrossThreadsAndLanes) {
  const CampaignOptions base = resume_options();

  // One reference, default threads/lanes: determinism says every
  // configuration below must reproduce it exactly.
  TraceEngine ref_engine(present_spec(), LogicStyle::kStaticCmos, kTech);
  AttackSet ref = make_attacks(ref_engine, base);
  Distinguisher* const ref_list[] = {&ref.cpa, &ref.dom, &ref.mtd};
  ref_engine.run_distinguishers(base, ref_list);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{5}}) {
    for (const std::size_t lanes : runtime_lane_widths()) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " lanes=" + std::to_string(lanes));
      CampaignOptions options = base;
      options.num_threads = threads;
      options.lane_width = lanes;
      const std::string checkpoint =
          temp_path(std::to_string(threads) + "_" + std::to_string(lanes));

      // Interrupt after 3 of 7 shards...
      {
        TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
        AttackSet set = make_attacks(engine, options);
        Distinguisher* const list[] = {&set.cpa, &set.dom, &set.mtd};
        CampaignPersistence persist;
        persist.shard_end = 3;
        persist.checkpoint_path = checkpoint;
        EXPECT_FALSE(engine.run_distinguishers(options, list, persist));
      }
      // ...and resume the remainder in a fresh engine and fresh
      // distinguishers, as a restarted process would.
      TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
      AttackSet set = make_attacks(engine, options);
      Distinguisher* const list[] = {&set.cpa, &set.dom, &set.mtd};
      CampaignPersistence persist;
      persist.resume_path = checkpoint;
      EXPECT_TRUE(engine.run_distinguishers(options, list, persist));

      expect_same_scores(set.cpa.result().score, ref.cpa.result().score);
      expect_same_scores(set.dom.result().score, ref.dom.result().score);
      EXPECT_EQ(set.mtd.result().rank_history, ref.mtd.result().rank_history);
      EXPECT_EQ(set.mtd.result().mtd, ref.mtd.result().mtd);
    }
  }
}

TEST(CheckpointResumeTest, PeriodicWaveCheckpointsDoNotPerturbTheRun) {
  const CampaignOptions options = resume_options();
  TraceEngine ref_engine(present_spec(), LogicStyle::kStaticCmos, kTech);
  AttackSet ref = make_attacks(ref_engine, options);
  Distinguisher* const ref_list[] = {&ref.cpa, &ref.dom, &ref.mtd};
  ref_engine.run_distinguishers(options, ref_list);

  // Checkpoint every 2 shards: four waves, a state file rewritten after
  // each — the run still completes and matches exactly.
  TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
  AttackSet set = make_attacks(engine, options);
  Distinguisher* const list[] = {&set.cpa, &set.dom, &set.mtd};
  CampaignPersistence persist;
  persist.checkpoint_path = temp_path("waves");
  persist.checkpoint_every_shards = 2;
  EXPECT_TRUE(engine.run_distinguishers(options, list, persist));
  expect_same_scores(set.cpa.result().score, ref.cpa.result().score);
  expect_same_scores(set.dom.result().score, ref.dom.result().score);
  EXPECT_EQ(set.mtd.result().rank_history, ref.mtd.result().rank_history);

  // The final checkpoint covers everything: resuming from it does no
  // simulation work and reproduces the same results once more.
  TraceEngine resumed_engine(present_spec(), LogicStyle::kStaticCmos, kTech);
  AttackSet resumed = make_attacks(resumed_engine, options);
  Distinguisher* const resumed_list[] = {&resumed.cpa, &resumed.dom,
                                         &resumed.mtd};
  CampaignPersistence resume;
  resume.resume_path = persist.checkpoint_path;
  EXPECT_TRUE(
      resumed_engine.run_distinguishers(options, resumed_list, resume));
  expect_same_scores(resumed.cpa.result().score, ref.cpa.result().score);
  EXPECT_EQ(resumed.mtd.result().rank_history, ref.mtd.result().rank_history);
}

TEST(CheckpointResumeTest, ResumeRejectsAForeignCampaign) {
  CampaignOptions options = resume_options();
  const std::string checkpoint = temp_path("foreign");
  {
    TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
    AttackSet set = make_attacks(engine, options);
    Distinguisher* const list[] = {&set.cpa, &set.dom, &set.mtd};
    CampaignPersistence persist;
    persist.shard_end = 3;
    persist.checkpoint_path = checkpoint;
    EXPECT_FALSE(engine.run_distinguishers(options, list, persist));
  }
  // Same spec, different noise sigma: a different trace stream, so the
  // checkpoint must be refused rather than silently mixed in.
  options.noise_sigma = 3e-16;
  TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
  AttackSet set = make_attacks(engine, options);
  Distinguisher* const list[] = {&set.cpa, &set.dom, &set.mtd};
  CampaignPersistence persist;
  persist.resume_path = checkpoint;
  EXPECT_THROW(engine.run_distinguishers(options, list, persist),
               ManifestMismatchError);
}

}  // namespace
}  // namespace sable
