// Tests for the switch-level gate energy model: discharge/recharge
// accounting, the memory effect of genuine networks, constancy for fully
// connected ones, and the NED/NSD profile machinery.
#include <gtest/gtest.h>

#include "cell/library.hpp"
#include "core/checks.hpp"
#include "core/enhancer.hpp"
#include "core/fc_synthesizer.hpp"
#include "core/genuine_builder.hpp"
#include "expr/parser.hpp"
#include "switchsim/cycle_sim.hpp"
#include "switchsim/energy.hpp"
#include "tech/capacitance.hpp"
#include "util/error.hpp"

namespace sable {
namespace {

const Technology kTech = Technology::generic_180nm();

struct GateUnderTest {
  DpdnNetwork net;
  GateEnergyModel model;
};

GateUnderTest make_gate(const char* expr_text, std::size_t n,
                        NetworkVariant variant) {
  VarTable vars;
  const ExprPtr f = parse_expression(expr_text, vars);
  DpdnNetwork net = [&] {
    switch (variant) {
      case NetworkVariant::kGenuine:
        return build_genuine_dpdn(f, n);
      case NetworkVariant::kFullyConnected:
        return synthesize_fc_dpdn(f, n);
      case NetworkVariant::kEnhanced:
        return synthesize_enhanced_dpdn(f, n);
    }
    throw InvalidArgument("bad variant");
  }();
  const SizingPlan sizing = SizingPlan::defaults(kTech);
  GateEnergyModel model = build_gate_model(net, kTech, sizing);
  return GateUnderTest{std::move(net), std::move(model)};
}

TEST(GateModelTest, CapacitancesArePositiveAndFinite) {
  const auto gate = make_gate("A.B", 2, NetworkVariant::kFullyConnected);
  ASSERT_EQ(gate.model.node_cap.size(), gate.net.node_count());
  for (double c : gate.model.node_cap) {
    EXPECT_GT(c, 0.0);
    EXPECT_LT(c, 1e-12);  // sane fF range
  }
  EXPECT_GT(gate.model.constant_energy, 0.0);
}

TEST(GateModelTest, MoreDevicesMeanMoreNodeCapacitance) {
  const auto fc = make_gate("A.B", 2, NetworkVariant::kFullyConnected);
  const auto enh = make_gate("A.B", 2, NetworkVariant::kEnhanced);
  const SizingPlan sizing = SizingPlan::defaults(kTech);
  EXPECT_GT(total_internal_capacitance(enh.net, kTech, sizing),
            total_internal_capacitance(fc.net, kTech, sizing));
}

TEST(CycleSimTest, FullyConnectedGateIsConstantEnergy) {
  const auto gate = make_gate("A.B", 2, NetworkVariant::kFullyConnected);
  SablGateSim sim(gate.net, gate.model);
  const double e0 = sim.cycle(0b00);
  for (std::uint64_t a : {0b01ull, 0b10ull, 0b11ull, 0b00ull, 0b11ull}) {
    EXPECT_DOUBLE_EQ(sim.cycle(a), e0);
  }
}

TEST(CycleSimTest, GenuineGateEnergyDependsOnInput) {
  const auto gate = make_gate("A.B", 2, NetworkVariant::kGenuine);
  SablGateSim sim(gate.net, gate.model);
  sim.cycle(0b11);
  const double e_connected = sim.cycle(0b11);  // W discharges and recharges
  const double e_floating = sim.cycle(0b00);   // W floats
  EXPECT_GT(e_connected, e_floating);
  // The difference is exactly the internal node capacitance energy.
  const double c_w = gate.model.node_cap[3];
  EXPECT_NEAR(e_connected - e_floating, c_w * kTech.vdd * kTech.vdd,
              1e-20);
}

TEST(CycleSimTest, FloatingNodeKeepsState) {
  const auto gate = make_gate("A.B", 2, NetworkVariant::kGenuine);
  SablGateSim sim(gate.net, gate.model);
  sim.cycle(0b11);  // W recharged at end of cycle
  EXPECT_TRUE(sim.node_state()[3]);
  sim.cycle(0b00);  // W floats: keeps charge
  EXPECT_TRUE(sim.node_state()[3]);
  sim.reset(false);
  EXPECT_FALSE(sim.node_state()[3]);
  sim.cycle(0b00);  // still floating: stays discharged
  EXPECT_FALSE(sim.node_state()[3]);
  sim.cycle(0b11);  // reconnected: discharge/recharge cycle
  EXPECT_TRUE(sim.node_state()[3]);
}

TEST(EnergyProfileTest, NedZeroForFullyConnected) {
  const auto gate = make_gate("(A+B).(C+D)", 4,
                              NetworkVariant::kFullyConnected);
  const EnergyProfile profile = profile_gate_energy(gate.net, gate.model);
  EXPECT_EQ(profile.energy_per_input.size(), 16u);
  EXPECT_NEAR(profile.ned, 0.0, 1e-12);
  EXPECT_NEAR(profile.nsd, 0.0, 1e-12);
}

TEST(EnergyProfileTest, NedPositiveForGenuine) {
  const auto gate = make_gate("(A+B).(C+D)", 4, NetworkVariant::kGenuine);
  const EnergyProfile profile = profile_gate_energy(gate.net, gate.model);
  EXPECT_GT(profile.ned, 0.01);
  EXPECT_GT(profile.nsd, 0.0);
  EXPECT_LT(profile.min_energy, profile.max_energy);
}

TEST(EnergyProfileTest, EnhancedCostsMoreButStaysConstant) {
  const auto fc = make_gate("A.B", 2, NetworkVariant::kFullyConnected);
  const auto enh = make_gate("A.B", 2, NetworkVariant::kEnhanced);
  const EnergyProfile p_fc = profile_gate_energy(fc.net, fc.model);
  const EnergyProfile p_enh = profile_gate_energy(enh.net, enh.model);
  EXPECT_NEAR(p_enh.ned, 0.0, 1e-12);
  EXPECT_GT(p_enh.mean_energy, p_fc.mean_energy);
}

TEST(EnergyTraceTest, TraceMatchesManualCycles) {
  const auto gate = make_gate("A.B", 2, NetworkVariant::kGenuine);
  const std::vector<std::uint64_t> inputs = {0b11, 0b00, 0b01, 0b11};
  const auto trace = energy_trace(gate.net, gate.model, inputs);
  SablGateSim sim(gate.net, gate.model);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_DOUBLE_EQ(trace[i], sim.cycle(inputs[i])) << i;
  }
}

// Cross-validation against the structural analyses: a gate is constant-
// energy in the switch model iff its network is fully connected.
class VariantSweep
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(VariantSweep, ConstancyMatchesFullConnectivity) {
  const auto& [text, variant_int] = GetParam();
  const auto variant = static_cast<NetworkVariant>(variant_int);
  VarTable vars;
  const ExprPtr f = parse_expression(text, vars);
  const auto n = f->variables().size();
  const auto gate = make_gate(text, n, variant);
  const EnergyProfile profile = profile_gate_energy(gate.net, gate.model);
  const bool constant = profile.ned < 1e-12;
  const bool fully_connected =
      check_full_connectivity(gate.net).fully_connected;
  EXPECT_EQ(constant, fully_connected) << text;
}

INSTANTIATE_TEST_SUITE_P(
    Gates, VariantSweep,
    ::testing::Combine(::testing::Values("A.B", "A + B", "(A+B).(C+D)",
                                         "A.B + C.D", "A.B' + A'.B",
                                         "A.(B + C)"),
                       ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace sable
