// Generic technology description.
//
// The paper's experiments used a commercial 0.18 um-class process behind
// SPICE; that kit is proprietary, so this module provides an openly
// documented level-1 parameter set with the same orders of magnitude
// (VDD = 1.8 V, fF-scale node capacitances). The figures we reproduce
// depend on *which* capacitances discharge through *which* paths, not on
// short-channel accuracy; these parameters are calibration constants.
#pragma once

#include <string>

namespace sable {

/// Level-1 (Shichman-Hodges) MOSFET model parameters. PMOS parameters are
/// expressed for the usual source-referenced convention (vt0 < 0).
struct MosModelParams {
  double vt0 = 0.0;      ///< threshold voltage [V]
  double kp = 0.0;       ///< transconductance mu*Cox [A/V^2]
  double lambda = 0.0;   ///< channel-length modulation [1/V]
  double cgate_per_area = 0.0;   ///< gate capacitance [F/m^2]
  double cov_per_width = 0.0;    ///< gate-source/drain overlap [F/m]
  double cj_per_width = 0.0;     ///< junction cap per terminal [F/m]
};

struct Technology {
  std::string name;
  double vdd = 1.8;          ///< supply [V]
  double min_length = 0.0;   ///< minimum channel length [m]
  double wire_cap_per_node = 0.0;  ///< lumped local-routing cap [F]
  MosModelParams nmos;
  MosModelParams pmos;

  /// The library's reference process: a generic 0.18 um-class technology.
  static Technology generic_180nm();
};

/// Transistor sizing used when assembling SABL/CVSL gates. Widths in meters.
struct SizingPlan {
  double length = 0.0;          ///< channel length for all devices
  double dpdn_width = 0.0;      ///< DPDN logic and pass-gate NMOS
  double bridge_width = 0.0;    ///< M1 between X and Y
  double foot_width = 0.0;      ///< clocked foot NMOS (Z to ground)
  double sense_n_width = 0.0;   ///< cross-coupled NMOS
  double sense_p_width = 0.0;   ///< cross-coupled PMOS
  double precharge_width = 0.0; ///< clk precharge PMOS
  double inv_n_width = 0.0;     ///< output inverter NMOS
  double inv_p_width = 0.0;     ///< output inverter PMOS
  double output_load = 0.0;     ///< external load per output [F]

  /// Default sizing for the reference process.
  static SizingPlan defaults(const Technology& tech);
};

}  // namespace sable
