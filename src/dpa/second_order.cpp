#include "dpa/second_order.hpp"

#include <cmath>

#include "io/serial.hpp"
#include "util/error.hpp"

namespace sable {

namespace {

constexpr std::uint32_t kSecondOrderTag = 0x53AB1004;

// Pair p enumerates i < j lexicographically: (0,1), (0,2), …, (1,2), ….
// The loops below iterate pairs in this order with a running index, so the
// helper exists only for result() reporting.
std::size_t pair_count(std::size_t width) {
  return width * (width - 1) / 2;
}

}  // namespace

StreamingSecondOrderCpa::StreamingSecondOrderCpa(const SboxSpec& spec,
                                                 PowerModel model,
                                                 std::size_t bit)
    : num_guesses_(std::size_t{1} << spec.in_bits),
      num_plaintexts_(num_guesses_),
      model_(model),
      bit_(bit),
      predictions_(shared_prediction_table(spec, model, bit)) {}

void StreamingSecondOrderCpa::ensure_width(std::size_t width) {
  if (width_ != 0) {
    SABLE_REQUIRE(width == width_,
                  "second-order CPA blocks must keep the row width of the "
                  "first block");
    return;
  }
  SABLE_REQUIRE(width >= 2,
                "second-order CPA needs at least two sample columns to "
                "form a centered product");
  width_ = width;
  num_pairs_ = pair_count(width);
  sums_.mean_x.assign(width_, 0.0);
  sums_.mean_h.assign(num_guesses_, 0.0);
  sums_.m2_h.assign(num_guesses_, 0.0);
  sums_.c2.assign(width_ * width_, 0.0);
  sums_.c_xh.assign(width_ * num_guesses_, 0.0);
  sums_.m3_iij.assign(num_pairs_, 0.0);
  sums_.m3_ijj.assign(num_pairs_, 0.0);
  sums_.m4.assign(num_pairs_, 0.0);
  sums_.m3_ijh.assign(num_pairs_ * num_guesses_, 0.0);
}

StreamingSecondOrderCpa::Sums StreamingSecondOrderCpa::block_sums(
    const std::uint8_t* pts, const double* rows, std::size_t count) const {
  const std::size_t L = width_;
  const std::size_t G = num_guesses_;
  const double* table = predictions_->data();
  Sums b;
  b.n = count;
  b.mean_x.assign(L, 0.0);
  b.mean_h.assign(G, 0.0);
  b.m2_h.assign(G, 0.0);
  b.c2.assign(L * L, 0.0);
  b.c_xh.assign(L * G, 0.0);
  b.m3_iij.assign(num_pairs_, 0.0);
  b.m3_ijj.assign(num_pairs_, 0.0);
  b.m4.assign(num_pairs_, 0.0);
  b.m3_ijh.assign(num_pairs_ * G, 0.0);

  // Pass 1: block means. The prediction stream depends only on the
  // sub-plaintext value, so its per-guess means (and M2 below) reduce to
  // the plaintext histogram — O(plaintexts · guesses), not O(count).
  std::vector<std::size_t> hist(num_plaintexts_, 0);
  for (std::size_t t = 0; t < count; ++t) {
    SABLE_REQUIRE(pts[t] < num_plaintexts_, "plaintext out of range");
    ++hist[pts[t]];
    const double* row = rows + t * L;
    for (std::size_t i = 0; i < L; ++i) b.mean_x[i] += row[i];
  }
  const double inv_n = 1.0 / static_cast<double>(count);
  for (std::size_t i = 0; i < L; ++i) b.mean_x[i] *= inv_n;
  for (std::size_t pt = 0; pt < num_plaintexts_; ++pt) {
    if (hist[pt] == 0) continue;
    const double w = static_cast<double>(hist[pt]);
    const double* pred = table + pt * G;
    for (std::size_t g = 0; g < G; ++g) b.mean_h[g] += w * pred[g];
  }
  for (std::size_t g = 0; g < G; ++g) b.mean_h[g] *= inv_n;
  for (std::size_t pt = 0; pt < num_plaintexts_; ++pt) {
    if (hist[pt] == 0) continue;
    const double w = static_cast<double>(hist[pt]);
    const double* pred = table + pt * G;
    for (std::size_t g = 0; g < G; ++g) {
      const double dh = pred[g] - b.mean_h[g];
      b.m2_h[g] += w * dh * dh;
    }
  }

  // Pass 2: central sums around the block means.
  std::vector<double> dx(L), dh(G);
  for (std::size_t t = 0; t < count; ++t) {
    const double* row = rows + t * L;
    for (std::size_t i = 0; i < L; ++i) dx[i] = row[i] - b.mean_x[i];
    const double* pred = table + pts[t] * G;
    for (std::size_t g = 0; g < G; ++g) dh[g] = pred[g] - b.mean_h[g];
    for (std::size_t i = 0; i < L; ++i) {
      for (std::size_t j = i; j < L; ++j) b.c2[i * L + j] += dx[i] * dx[j];
      double* cx = b.c_xh.data() + i * G;
      for (std::size_t g = 0; g < G; ++g) cx[g] += dx[i] * dh[g];
    }
    std::size_t p = 0;
    for (std::size_t i = 0; i < L; ++i) {
      for (std::size_t j = i + 1; j < L; ++j, ++p) {
        const double prod = dx[i] * dx[j];
        b.m3_iij[p] += dx[i] * prod;
        b.m3_ijj[p] += prod * dx[j];
        b.m4[p] += prod * prod;
        double* m3h = b.m3_ijh.data() + p * G;
        for (std::size_t g = 0; g < G; ++g) m3h[g] += prod * dh[g];
      }
    }
  }
  // Mirror the upper triangle: the combine formulas index c2 freely.
  for (std::size_t i = 0; i < L; ++i) {
    for (std::size_t j = 0; j < i; ++j) b.c2[i * L + j] = b.c2[j * L + i];
  }
  return b;
}

void StreamingSecondOrderCpa::combine(Sums& a, const Sums& b) const {
  if (b.n == 0) return;
  if (a.n == 0) {
    a = b;
    return;
  }
  const std::size_t L = width_;
  const std::size_t G = num_guesses_;
  const double na = static_cast<double>(a.n);
  const double nb = static_cast<double>(b.n);
  const double n = na + nb;

  // Deviations of each part's mean from the combined mean: for column i,
  // a_i = μ_Ai − μ, b_i = μ_Bi − μ. Every formula below is the exact
  // expansion of the combined central sum Σ (d + shift)·… with the
  // part-local zero-sum terms dropped.
  std::vector<double> ax(L), bx(L), ah(G), bh(G);
  for (std::size_t i = 0; i < L; ++i) {
    const double d = b.mean_x[i] - a.mean_x[i];
    ax[i] = -d * nb / n;
    bx[i] = d * na / n;
  }
  for (std::size_t g = 0; g < G; ++g) {
    const double d = b.mean_h[g] - a.mean_h[g];
    ah[g] = -d * nb / n;
    bh[g] = d * na / n;
  }

  // Highest order first: each update reads only pre-merge lower-order
  // sums, which are still untouched further down.
  std::size_t p = 0;
  for (std::size_t i = 0; i < L; ++i) {
    for (std::size_t j = i + 1; j < L; ++j, ++p) {
      const double acii = a.c2[i * L + i], acjj = a.c2[j * L + j];
      const double acij = a.c2[i * L + j];
      const double bcii = b.c2[i * L + i], bcjj = b.c2[j * L + j];
      const double bcij = b.c2[i * L + j];
      a.m4[p] += b.m4[p]
          + 2.0 * ax[j] * a.m3_iij[p] + 2.0 * ax[i] * a.m3_ijj[p]
          + ax[j] * ax[j] * acii + ax[i] * ax[i] * acjj
          + 4.0 * ax[i] * ax[j] * acij
          + na * ax[i] * ax[i] * ax[j] * ax[j]
          + 2.0 * bx[j] * b.m3_iij[p] + 2.0 * bx[i] * b.m3_ijj[p]
          + bx[j] * bx[j] * bcii + bx[i] * bx[i] * bcjj
          + 4.0 * bx[i] * bx[j] * bcij
          + nb * bx[i] * bx[i] * bx[j] * bx[j];
      double* m3h = a.m3_ijh.data() + p * G;
      const double* om3h = b.m3_ijh.data() + p * G;
      const double* acxi = a.c_xh.data() + i * G;
      const double* acxj = a.c_xh.data() + j * G;
      const double* bcxi = b.c_xh.data() + i * G;
      const double* bcxj = b.c_xh.data() + j * G;
      for (std::size_t g = 0; g < G; ++g) {
        m3h[g] += om3h[g]
            + ax[i] * acxj[g] + ax[j] * acxi[g] + ah[g] * acij
            + na * ax[i] * ax[j] * ah[g]
            + bx[i] * bcxj[g] + bx[j] * bcxi[g] + bh[g] * bcij
            + nb * bx[i] * bx[j] * bh[g];
      }
      a.m3_iij[p] += b.m3_iij[p]
          + 2.0 * ax[i] * acij + ax[j] * acii + na * ax[i] * ax[i] * ax[j]
          + 2.0 * bx[i] * bcij + bx[j] * bcii + nb * bx[i] * bx[i] * bx[j];
      a.m3_ijj[p] += b.m3_ijj[p]
          + 2.0 * ax[j] * acij + ax[i] * acjj + na * ax[i] * ax[j] * ax[j]
          + 2.0 * bx[j] * bcij + bx[i] * bcjj + nb * bx[i] * bx[j] * bx[j];
    }
  }
  for (std::size_t i = 0; i < L; ++i) {
    for (std::size_t j = 0; j < L; ++j) {
      a.c2[i * L + j] += b.c2[i * L + j] + na * ax[i] * ax[j]
          + nb * bx[i] * bx[j];
    }
    double* cx = a.c_xh.data() + i * G;
    const double* ocx = b.c_xh.data() + i * G;
    for (std::size_t g = 0; g < G; ++g) {
      cx[g] += ocx[g] + na * ax[i] * ah[g] + nb * bx[i] * bh[g];
    }
  }
  for (std::size_t g = 0; g < G; ++g) {
    a.m2_h[g] += b.m2_h[g] + na * ah[g] * ah[g] + nb * bh[g] * bh[g];
  }
  for (std::size_t i = 0; i < L; ++i) {
    a.mean_x[i] += (b.mean_x[i] - a.mean_x[i]) * nb / n;
  }
  for (std::size_t g = 0; g < G; ++g) {
    a.mean_h[g] += (b.mean_h[g] - a.mean_h[g]) * nb / n;
  }
  a.n += b.n;
}

void StreamingSecondOrderCpa::add_block(const std::uint8_t* pts,
                                        const double* rows, std::size_t count,
                                        std::size_t width) {
  if (count == 0) return;
  ensure_width(width);
  const Sums b = block_sums(pts, rows, count);
  combine(sums_, b);
}

void StreamingSecondOrderCpa::merge(const StreamingSecondOrderCpa& other) {
  SABLE_REQUIRE(num_guesses_ == other.num_guesses_ &&
                    model_ == other.model_ && bit_ == other.bit_,
                "merge requires identically configured second-order CPA "
                "accumulators");
  SABLE_REQUIRE(predictions_ == other.predictions_ ||
                    *predictions_ == *other.predictions_,
                "merge requires accumulators over the same S-box spec");
  if (other.width_ == 0) return;  // other never saw a block
  ensure_width(other.width_);
  combine(sums_, other.sums_);
}

void StreamingSecondOrderCpa::save(ByteWriter& writer) const {
  writer.u32(kSecondOrderTag);
  writer.u64(num_guesses_);
  writer.u32(static_cast<std::uint32_t>(model_));
  writer.u64(bit_);
  writer.u64(width_);
  if (width_ == 0) return;  // lazily sized; nothing accumulated yet
  writer.u64(sums_.n);
  writer.f64s(sums_.mean_x.data(), width_);
  writer.f64s(sums_.mean_h.data(), num_guesses_);
  writer.f64s(sums_.m2_h.data(), num_guesses_);
  writer.f64s(sums_.c2.data(), width_ * width_);
  writer.f64s(sums_.c_xh.data(), width_ * num_guesses_);
  writer.f64s(sums_.m3_iij.data(), num_pairs_);
  writer.f64s(sums_.m3_ijj.data(), num_pairs_);
  writer.f64s(sums_.m4.data(), num_pairs_);
  writer.f64s(sums_.m3_ijh.data(), num_pairs_ * num_guesses_);
}

void StreamingSecondOrderCpa::load(ByteReader& reader) {
  SABLE_REQUIRE(reader.u32() == kSecondOrderTag,
                "serialized state is not a second-order CPA accumulator");
  SABLE_REQUIRE(reader.u64() == num_guesses_ &&
                    reader.u32() == static_cast<std::uint32_t>(model_) &&
                    reader.u64() == bit_,
                "serialized second-order CPA state was produced by a "
                "differently configured accumulator (guess count, model or "
                "bit)");
  const std::uint64_t width = reader.u64();
  if (width == 0) {
    SABLE_REQUIRE(width_ == 0,
                  "cannot load an empty second-order state into an "
                  "accumulator whose width is already fixed");
    return;
  }
  // A corrupt width field must not drive the O(width^2) allocations in
  // ensure_width: the c2 matrix alone needs width^2 doubles from the
  // stream, so bound the claim by the bytes actually remaining.
  SABLE_REQUIRE(width <= 0xFFFF &&
                    width * width <= reader.remaining() / sizeof(double),
                "serialized second-order width is implausibly large for "
                "the remaining file size");
  // The stored width must agree with a fixed width; a lazily unsized
  // accumulator adopts it (the same rule add_block applies to its first
  // block, including the >= 2 check inside ensure_width).
  ensure_width(static_cast<std::size_t>(width));
  sums_.n = reader.u64();
  reader.f64s(sums_.mean_x.data(), width_);
  reader.f64s(sums_.mean_h.data(), num_guesses_);
  reader.f64s(sums_.m2_h.data(), num_guesses_);
  reader.f64s(sums_.c2.data(), width_ * width_);
  reader.f64s(sums_.c_xh.data(), width_ * num_guesses_);
  reader.f64s(sums_.m3_iij.data(), num_pairs_);
  reader.f64s(sums_.m3_ijj.data(), num_pairs_);
  reader.f64s(sums_.m4.data(), num_pairs_);
  reader.f64s(sums_.m3_ijh.data(), num_pairs_ * num_guesses_);
}

SecondOrderAttackResult StreamingSecondOrderCpa::result() const {
  SABLE_REQUIRE(sums_.n >= 2,
                "second-order CPA requires at least two traces");
  const std::size_t L = width_;
  const std::size_t G = num_guesses_;
  const double n = static_cast<double>(sums_.n);
  SecondOrderAttackResult result;
  std::vector<double> combined(G, 0.0);
  double global_best = -1.0;
  std::size_t p = 0;
  for (std::size_t i = 0; i < L; ++i) {
    for (std::size_t j = i + 1; j < L; ++j, ++p) {
      const double cij = sums_.c2[i * L + j];
      // n · Var of the centered product: M4_iijj − C_ij²/n. Rounding can
      // push a degenerate pair epsilon-negative, so guard, don't clamp.
      const double var_p = sums_.m4[p] - cij * cij / n;
      if (!(var_p > 0.0)) continue;
      const double* m3h = sums_.m3_ijh.data() + p * G;
      for (std::size_t g = 0; g < G; ++g) {
        if (!(sums_.m2_h[g] > 0.0)) continue;
        const double score =
            std::fabs(m3h[g]) / std::sqrt(var_p * sums_.m2_h[g]);
        if (score > combined[g]) combined[g] = score;
        if (score > global_best) {
          global_best = score;
          result.best_pair_first = i;
          result.best_pair_second = j;
        }
      }
    }
  }
  result.combined = make_attack_result(std::move(combined));
  return result;
}

}  // namespace sable
