#include "sabl/sabl_gate.hpp"

#include "tech/capacitance.hpp"
#include "util/error.hpp"

namespace sable {

SablGateCircuit assemble_sabl_gate(const DpdnNetwork& net,
                                   const VarTable& vars,
                                   const Technology& tech,
                                   const SizingPlan& sizing) {
  SablGateCircuit gate;
  spice::Circuit& ckt = gate.circuit;

  // DPDN node naming: externals get fixed names, internals keep theirs.
  gate.dpdn_node_names.resize(net.node_count());
  for (NodeId n = 0; n < net.node_count(); ++n) {
    switch (net.node_kind(n)) {
      case NodeKind::kX:
        gate.dpdn_node_names[n] = "x";
        break;
      case NodeKind::kY:
        gate.dpdn_node_names[n] = "y";
        break;
      case NodeKind::kZ:
        gate.dpdn_node_names[n] = "z";
        break;
      case NodeKind::kInternal:
        gate.dpdn_node_names[n] = "n_" + net.node_name(n);
        break;
    }
  }

  // Input rails.
  for (VarId v = 0; v < net.num_vars(); ++v) {
    gate.input_true.push_back("in_" + vars.name(v));
    gate.input_false.push_back("inb_" + vars.name(v));
  }

  const double l = sizing.length;

  // Sense amplifier.
  ckt.add_mosfet("mp_pre_s", spice::MosType::kPmos, "s", "clk", "vdd",
                 tech.pmos, sizing.precharge_width, l);
  ckt.add_mosfet("mp_pre_sb", spice::MosType::kPmos, "sb", "clk", "vdd",
                 tech.pmos, sizing.precharge_width, l);
  ckt.add_mosfet("mp_cc_s", spice::MosType::kPmos, "s", "sb", "vdd",
                 tech.pmos, sizing.sense_p_width, l);
  ckt.add_mosfet("mp_cc_sb", spice::MosType::kPmos, "sb", "s", "vdd",
                 tech.pmos, sizing.sense_p_width, l);
  ckt.add_mosfet("mn_cc_s", spice::MosType::kNmos, "s", "sb", "x", tech.nmos,
                 sizing.sense_n_width, l);
  ckt.add_mosfet("mn_cc_sb", spice::MosType::kNmos, "sb", "s", "y", tech.nmos,
                 sizing.sense_n_width, l);

  // Bridge M1 and clocked foot.
  ckt.add_mosfet("m1_bridge", spice::MosType::kNmos, "x", "clk", "y",
                 tech.nmos, sizing.bridge_width, l);
  ckt.add_mosfet("mn_foot", spice::MosType::kNmos, "z", "clk", "0", tech.nmos,
                 sizing.foot_width, l);

  // DPDN switches.
  std::size_t dev_index = 0;
  for (const auto& d : net.devices()) {
    const std::string gate_node = d.gate.positive
                                      ? gate.input_true[d.gate.var]
                                      : gate.input_false[d.gate.var];
    ckt.add_mosfet("mn_dpdn_" + std::to_string(dev_index++),
                   spice::MosType::kNmos, gate.dpdn_node_names[d.a], gate_node,
                   gate.dpdn_node_names[d.b], tech.nmos, sizing.dpdn_width, l);
  }

  // Output inverters. When f = 1 the X side fires and sense node s falls,
  // so out = inv(s) goes high: out follows f, outb = inv(sb) follows f'.
  // Both outputs precharge low (s, sb precharge high), which is what lets
  // cascaded gates hold their inputs at 0 during precharge.
  ckt.add_mosfet("mp_inv_out", spice::MosType::kPmos, "out", "s", "vdd",
                 tech.pmos, sizing.inv_p_width, l);
  ckt.add_mosfet("mn_inv_out", spice::MosType::kNmos, "out", "s", "0",
                 tech.nmos, sizing.inv_n_width, l);
  ckt.add_mosfet("mp_inv_outb", spice::MosType::kPmos, "outb", "sb", "vdd",
                 tech.pmos, sizing.inv_p_width, l);
  ckt.add_mosfet("mn_inv_outb", spice::MosType::kNmos, "outb", "sb", "0",
                 tech.nmos, sizing.inv_n_width, l);

  // Explicit node capacitances. DPDN nodes from extraction, with the sense
  // NMOS / bridge / foot junctions added to x, y, z.
  gate.dpdn_node_caps = dpdn_node_capacitances(net, tech, sizing);
  const double jn = tech.nmos.cj_per_width + tech.nmos.cov_per_width;
  const double jp = tech.pmos.cj_per_width + tech.pmos.cov_per_width;
  gate.dpdn_node_caps[DpdnNetwork::kNodeX] +=
      jn * (sizing.sense_n_width + sizing.bridge_width);
  gate.dpdn_node_caps[DpdnNetwork::kNodeY] +=
      jn * (sizing.sense_n_width + sizing.bridge_width);
  gate.dpdn_node_caps[DpdnNetwork::kNodeZ] += jn * sizing.foot_width;
  for (NodeId n = 0; n < net.node_count(); ++n) {
    ckt.add_capacitor(gate.dpdn_node_names[n], "0", gate.dpdn_node_caps[n]);
  }

  // Sense nodes: precharge + cross pair junctions + inverter gate load.
  const double inv_gate_cap =
      (tech.nmos.cgate_per_area * sizing.inv_n_width +
       tech.pmos.cgate_per_area * sizing.inv_p_width) *
          l +
      2.0 * tech.nmos.cov_per_width * sizing.inv_n_width +
      2.0 * tech.pmos.cov_per_width * sizing.inv_p_width;
  const double sense_cap = jp * (sizing.precharge_width + sizing.sense_p_width) +
                           jn * sizing.sense_n_width + inv_gate_cap +
                           tech.wire_cap_per_node;
  ckt.add_capacitor("s", "0", sense_cap);
  ckt.add_capacitor("sb", "0", sense_cap);

  // Outputs: inverter junctions + external load.
  const double out_cap = jn * sizing.inv_n_width + jp * sizing.inv_p_width +
                         sizing.output_load;
  ckt.add_capacitor("out", "0", out_cap);
  ckt.add_capacitor("outb", "0", out_cap);

  return gate;
}

}  // namespace sable
