#include "cell/wddl.hpp"

#include <bit>

namespace sable {

WddlCircuitSimBatch::WddlCircuitSimBatch(const GateCircuit& circuit,
                                         const Technology& tech,
                                         double mismatch, std::uint64_t seed)
    : circuit_(circuit), eval_(circuit), vdd_(tech.vdd) {
  Rng rng(seed);
  models_.reserve(circuit.gates().size());
  // Nominal rail load: one standard-cell output (junctions + fanout wire).
  const double nominal = 6e-15;
  for (std::size_t g = 0; g < circuit.gates().size(); ++g) {
    // Symmetric deterministic imbalance around the nominal value.
    const double delta = mismatch * (2.0 * rng.uniform() - 1.0);
    models_.push_back(WddlGateModel{nominal * (1.0 + delta),
                                    nominal * (1.0 - delta)});
  }
  // Cycle energy decomposes as (sum of false-rail loads) plus the
  // true/false delta of every gate whose true rail fired — the constant
  // base is hoisted so the per-cycle work is proportional to the firing
  // gates only.
  rail_delta_.reserve(models_.size());
  for (const WddlGateModel& m : models_) {
    const double e_false = m.c_false * vdd_ * vdd_;
    base_energy_ += e_false;
    rail_delta_.push_back(m.c_true * vdd_ * vdd_ - e_false);
  }
}

void WddlCircuitSimBatch::cycle(const std::vector<std::uint64_t>& input_words,
                                std::uint64_t lane_mask,
                                BatchCycleResult& out) {
  eval_.evaluate(input_words);
  if (lane_mask == ~std::uint64_t{0}) {
    out.energy.fill(base_energy_);
  } else {
    for (std::uint64_t m = lane_mask; m != 0; m &= m - 1) {
      out.energy[std::countr_zero(m)] = base_energy_;
    }
  }
  for (std::size_t g = 0; g < circuit_.gates().size(); ++g) {
    // Exactly one rail rises from the precharge wave and is charged; only
    // lanes whose true rail fired carry this gate's rail delta.
    const double delta = rail_delta_[g];
    for (std::uint64_t w = eval_.value_word(g) & lane_mask; w != 0;
         w &= w - 1) {
      out.energy[std::countr_zero(w)] += delta;
    }
  }
  out.output_words.resize(circuit_.outputs().size());
  for (std::size_t i = 0; i < circuit_.outputs().size(); ++i) {
    out.output_words[i] = eval_.output_word(i);
  }
}

WddlCircuitSim::WddlCircuitSim(const GateCircuit& circuit,
                               const Technology& tech, double mismatch,
                               std::uint64_t seed)
    : batch_(circuit, tech, mismatch, seed),
      words_(circuit.num_primary_inputs(), 0) {}

CycleResult WddlCircuitSim::cycle(std::uint64_t input_bits) {
  pack_lane_words(&input_bits, 1, words_);
  batch_.cycle(words_, 1u, scratch_);
  return CycleResult{outputs_for_lane(scratch_.output_words, 0),
                     scratch_.energy[0]};
}

}  // namespace sable
