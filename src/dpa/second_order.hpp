// Second-order (centered-product) CPA over time-resolved traces.
//
// First-order CPA correlates one sample against the predicted leakage.
// The second-order attack correlates the *centered product* of two sample
// columns — here two logic levels of a `cycle_sampled` row — with the
// prediction: p_t = (x_i,t − μ_i)(x_j,t − μ_j), score = |ρ(p, h)| per
// level pair, max-combined per guess. This is the stronger distinguisher
// class a constant-power claim must survive beyond first-order CPA/DoM
// (the companion VLSI-flow paper's argument), and the classic attack on
// masked implementations whose shares leak at two distinct times.
//
// One pass, exactly: the retained-trace formulation needs the full-campaign
// column means before it can form a single product, so a naive streaming
// port would be two-pass. Instead the accumulator keeps exact central
// co-moments up to fourth order — per column mean/M2, per pair C_ij,
// M3_iij, M3_ijj, M4_iijj, per guess mean/M2 of the prediction, and the
// mixed third moment M3_ijh per (pair, guess) — via block-local two-pass
// sums combined with pairwise (Chan/Pébay-style) update formulas. From
// those, with full-campaign means μ and n traces:
//
//   Cov(p, h)  = M3_ijh / n
//   Var(p)     = (M4_iijj − C_ij² / n) / n
//   Var(h)     = M2_h / n
//   ρ(p, h)    = M3_ijh / sqrt((M4_iijj − C_ij²/n) · M2_h)
//
// so the streamed scores equal the retained-trace centered-product
// reference to ~1e-13 while holding O(levels² · guesses) state and no
// trace. merge() folds a disjoint trace subset exactly (same pairwise
// formulas), which makes the accumulator shardable under the engine's
// fixed-shape merge tree — bit-identical results for any thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/leakage.hpp"
#include "dpa/attack.hpp"

namespace sable {

class ByteReader;
class ByteWriter;

/// Second-order scores: per guess the largest |ρ| over all level pairs,
/// plus the (i, j) pair where the winning guess peaked — the two moments
/// in time an analyst would combine on an oscilloscope.
struct SecondOrderAttackResult {
  AttackResult combined;
  std::size_t best_pair_first = 0;
  std::size_t best_pair_second = 0;
};

/// One-pass second-order CPA accumulator over rows of `width` per-level
/// samples. The width is fixed by the first block (lazily, so callers
/// need not thread the target's level count to the constructor) and must
/// be at least 2 — a centered product needs two distinct columns.
class StreamingSecondOrderCpa {
 public:
  StreamingSecondOrderCpa(const SboxSpec& spec, PowerModel model,
                          std::size_t bit = 0);

  /// Consumes `count` traces: `pts` holds the attacked instance's
  /// sub-plaintexts, `rows` holds count rows of `width` samples. Central
  /// sums are formed block-locally (two passes over the block, which is
  /// already resident) and folded in exactly, so feeding one block or
  /// many is numerically equivalent.
  void add_block(const std::uint8_t* pts, const double* rows,
                 std::size_t count, std::size_t width);

  /// Folds `other` — an accumulator over a disjoint trace subset with the
  /// same spec/model/bit and width — into this one, exactly (pairwise
  /// central co-moment combination up to fourth order).
  void merge(const StreamingSecondOrderCpa& other);

  std::size_t count() const { return sums_.n; }
  /// Samples per row; 0 until the first block fixes it.
  std::size_t width() const { return width_; }
  std::size_t num_guesses() const { return num_guesses_; }

  /// Scores over the traces consumed so far (needs at least two).
  SecondOrderAttackResult result() const;

  /// Bit-exact tagged (de)serialization (io/serial.hpp; the contract
  /// documented in streaming.hpp). A width-0 (never-fed) accumulator
  /// round trips to a width-0 accumulator.
  void save(ByteWriter& writer) const;
  void load(ByteReader& reader);

 private:
  // Central co-moment sums of one trace subset. Pair p runs over i < j in
  // lexicographic order; c2 is the full symmetric width×width co-moment
  // matrix (diagonal = per-column M2).
  struct Sums {
    std::size_t n = 0;
    std::vector<double> mean_x;   // [width]
    std::vector<double> mean_h;   // [guesses]
    std::vector<double> m2_h;     // [guesses]
    std::vector<double> c2;       // [width * width]
    std::vector<double> c_xh;     // [width * guesses]
    std::vector<double> m3_iij;   // [pairs]
    std::vector<double> m3_ijj;   // [pairs]
    std::vector<double> m4;       // [pairs]  Σ (dx_i dx_j)²
    std::vector<double> m3_ijh;   // [pairs * guesses]
  };

  void ensure_width(std::size_t width);
  Sums block_sums(const std::uint8_t* pts, const double* rows,
                  std::size_t count) const;
  // Folds B into A: exact pairwise combination, highest order first so
  // every update reads pre-merge lower-order values.
  void combine(Sums& a, const Sums& b) const;

  std::size_t num_guesses_;
  std::size_t num_plaintexts_;
  PowerModel model_;
  std::size_t bit_;
  std::shared_ptr<const std::vector<double>> predictions_;
  std::size_t width_ = 0;
  std::size_t num_pairs_ = 0;
  Sums sums_;
};

}  // namespace sable
