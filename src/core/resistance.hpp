// Effective discharge resistance analysis.
//
// §5: with the enhancement, "there is now a constant resistance in the
// discharge path between outputs X or Y and the common node Z". We verify
// this electrically: model every conducting switch as a resistor r_on and
// compute the effective (Laplacian) resistance from the conducting output
// node to Z for every assignment.
#pragma once

#include <vector>

#include "netlist/network.hpp"

namespace sable {

struct ResistanceReport {
  /// Effective resistance (in units of r_on) per assignment, measured from
  /// the conducting external node (X if f=1 else Y) to Z.
  std::vector<double> resistance_per_assignment;
  double min_resistance = 0.0;
  double max_resistance = 0.0;
  /// max/min - 1; zero means perfectly input-independent resistance.
  double relative_spread = 0.0;
};

/// Exhaustive effective-resistance analysis; `r_on` scales the result.
ResistanceReport analyze_discharge_resistance(const DpdnNetwork& net,
                                              double r_on = 1.0);

/// Effective resistance between two nodes with conducting switches = r_on.
/// Returns a negative value when the nodes are not connected.
double effective_resistance(const DpdnNetwork& net, std::uint64_t assignment,
                            NodeId from, NodeId to, double r_on = 1.0);

}  // namespace sable
