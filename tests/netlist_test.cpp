// Tests for the transistor-network representation and conduction analysis.
#include <gtest/gtest.h>

#include <limits>

#include "core/genuine_builder.hpp"
#include "expr/parser.hpp"
#include "netlist/conduction.hpp"
#include "netlist/network.hpp"
#include "netlist/sp_tree.hpp"
#include "netlist/union_find.hpp"
#include "util/error.hpp"

namespace sable {
namespace {

TEST(UnionFindTest, BasicOperations) {
  UnionFind uf(5);
  EXPECT_FALSE(uf.same(0, 1));
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(0, 1));
  EXPECT_TRUE(uf.same(0, 1));
  uf.unite(2, 3);
  uf.unite(1, 2);
  EXPECT_TRUE(uf.same(0, 3));
  EXPECT_FALSE(uf.same(0, 4));
}

TEST(SignalLiteralTest, Conduction) {
  const SignalLiteral a_pos{0, true};
  const SignalLiteral a_neg{0, false};
  EXPECT_TRUE(a_pos.conducts(0b1));
  EXPECT_FALSE(a_pos.conducts(0b0));
  EXPECT_FALSE(a_neg.conducts(0b1));
  EXPECT_TRUE(a_neg.conducts(0b0));
}

TEST(NetworkTest, NodeBookkeeping) {
  DpdnNetwork net(2);
  EXPECT_EQ(net.node_count(), 3u);
  EXPECT_EQ(net.internal_node_count(), 0u);
  const NodeId w = net.add_internal_node();
  EXPECT_EQ(net.node_name(w), "W1");
  EXPECT_EQ(net.node_kind(w), NodeKind::kInternal);
  EXPECT_EQ(net.node_kind(DpdnNetwork::kNodeX), NodeKind::kX);
  EXPECT_FALSE(net.is_external(w));
  EXPECT_TRUE(net.is_external(DpdnNetwork::kNodeZ));
}

TEST(NetworkTest, RejectsInvalidSwitches) {
  DpdnNetwork net(2);
  EXPECT_THROW(net.add_switch(SignalLiteral{0, true}, 0, 0), InvalidArgument);
  EXPECT_THROW(net.add_switch(SignalLiteral{0, true}, 0, 99), InvalidArgument);
  EXPECT_THROW(net.add_switch(SignalLiteral{7, true}, 0, 1), InvalidArgument);
}

TEST(NetworkTest, PassGateCountsTwoDevices) {
  DpdnNetwork net(2);
  const NodeId w = net.add_internal_node();
  net.add_pass_gate(0, DpdnNetwork::kNodeY, w);
  EXPECT_EQ(net.device_count(), 2u);
  EXPECT_EQ(net.pass_gate_device_count(), 2u);
  // A pass gate conducts for both polarities of its variable.
  EXPECT_TRUE(conducts(net, 0b0, DpdnNetwork::kNodeY, w));
  EXPECT_TRUE(conducts(net, 0b1, DpdnNetwork::kNodeY, w));
}

// Fig. 2 (left): genuine AND-NAND network built by hand.
DpdnNetwork fig2_genuine() {
  DpdnNetwork net(2);  // A = 0, B = 1
  const NodeId w = net.add_internal_node("W");
  net.add_switch(SignalLiteral{0, true}, DpdnNetwork::kNodeX, w);   // A
  net.add_switch(SignalLiteral{1, true}, w, DpdnNetwork::kNodeZ);   // B
  net.add_switch(SignalLiteral{0, false}, DpdnNetwork::kNodeY,
                 DpdnNetwork::kNodeZ);                              // A'
  net.add_switch(SignalLiteral{1, false}, DpdnNetwork::kNodeY,
                 DpdnNetwork::kNodeZ);                              // B'
  return net;
}

TEST(ConductionTest, GenuineAndNandFunctionality) {
  const DpdnNetwork net = fig2_genuine();
  VarTable vars;
  const ExprPtr f = parse_expression("A.B", vars);
  const TruthTable fx =
      conduction_function(net, DpdnNetwork::kNodeX, DpdnNetwork::kNodeZ);
  const TruthTable fy =
      conduction_function(net, DpdnNetwork::kNodeY, DpdnNetwork::kNodeZ);
  EXPECT_EQ(fx, table_of(f, 2));
  EXPECT_EQ(fy, table_of(f, 2).complemented());
}

TEST(ConductionTest, FloatingNodeDetection) {
  const DpdnNetwork net = fig2_genuine();
  // (0,0): A and B low -> W disconnected from everything (the paper's
  // memory-effect example).
  const auto connected = connected_to_external(net, 0b00);
  const NodeId w = 3;
  EXPECT_FALSE(connected[w]);
  // (1,1): W conducts to X and Z.
  const auto connected11 = connected_to_external(net, 0b11);
  EXPECT_TRUE(connected11[w]);
}

TEST(ConductionTest, ShortestConductingPath) {
  const DpdnNetwork net = fig2_genuine();
  EXPECT_EQ(shortest_conducting_path(net, 0b11, DpdnNetwork::kNodeX,
                                     DpdnNetwork::kNodeZ),
            2u);
  EXPECT_EQ(shortest_conducting_path(net, 0b00, DpdnNetwork::kNodeY,
                                     DpdnNetwork::kNodeZ),
            1u);
  EXPECT_EQ(shortest_conducting_path(net, 0b00, DpdnNetwork::kNodeX,
                                     DpdnNetwork::kNodeZ),
            std::numeric_limits<std::size_t>::max());
}

TEST(ConductionTest, PathEnumeration) {
  const DpdnNetwork net = fig2_genuine();
  const auto x_paths =
      enumerate_paths(net, DpdnNetwork::kNodeX, DpdnNetwork::kNodeZ);
  ASSERT_EQ(x_paths.size(), 1u);
  EXPECT_EQ(x_paths[0].device_indices.size(), 2u);
  EXPECT_TRUE(x_paths[0].satisfiable);
  const auto y_paths =
      enumerate_paths(net, DpdnNetwork::kNodeY, DpdnNetwork::kNodeZ);
  EXPECT_EQ(y_paths.size(), 2u);
}

TEST(ConductionTest, ContradictoryPathMarkedUnsatisfiable) {
  DpdnNetwork net(1);
  const NodeId w = net.add_internal_node();
  net.add_switch(SignalLiteral{0, true}, DpdnNetwork::kNodeX, w);
  net.add_switch(SignalLiteral{0, false}, w, DpdnNetwork::kNodeZ);
  const auto paths =
      enumerate_paths(net, DpdnNetwork::kNodeX, DpdnNetwork::kNodeZ);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_FALSE(paths[0].satisfiable);
}

TEST(SpTreeTest, PartitionsGenuineBranches) {
  const DpdnNetwork net = fig2_genuine();
  const BranchPartition part = partition_branches(net);
  EXPECT_EQ(part.x_branch.size(), 2u);
  EXPECT_EQ(part.y_branch.size(), 2u);
}

TEST(SpTreeTest, ExtractsSeriesParallelExpression) {
  VarTable vars;
  const ExprPtr f = parse_expression("(A+B).(C+D)", vars);
  const DpdnNetwork net = build_genuine_dpdn(f, 4);
  const BranchPartition part = partition_branches(net);
  const ExprPtr fx =
      extract_sp_expression(net, part.x_branch, DpdnNetwork::kNodeX);
  EXPECT_TRUE(equivalent(fx, f, 4));
  // Structural: top-to-bottom AND order is preserved.
  ASSERT_EQ(fx->kind(), ExprKind::kAnd);
  EXPECT_TRUE(equivalent(fx->operands()[0],
                         parse_expression("A+B", vars), 4));
}

TEST(SpTreeTest, RejectsNonSeparableNetwork) {
  // An FC network shares internal nodes between branches: not partitionable.
  DpdnNetwork net(2);
  const NodeId w = net.add_internal_node();
  net.add_switch(SignalLiteral{0, true}, DpdnNetwork::kNodeX, w);
  net.add_switch(SignalLiteral{1, true}, w, DpdnNetwork::kNodeZ);
  net.add_switch(SignalLiteral{0, false}, DpdnNetwork::kNodeY, w);
  net.add_switch(SignalLiteral{1, false}, DpdnNetwork::kNodeY,
                 DpdnNetwork::kNodeZ);
  EXPECT_THROW(partition_branches(net), InvalidArgument);
}

TEST(NetworkTest, ToStringListsDevices) {
  VarTable vars = VarTable::alphabetic(2);
  const DpdnNetwork net = fig2_genuine();
  const std::string text = net.to_string(vars);
  EXPECT_NE(text.find("A: X -- W"), std::string::npos);
  EXPECT_NE(text.find("B': Y -- Z"), std::string::npos);
}

}  // namespace
}  // namespace sable
