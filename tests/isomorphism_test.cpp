// Tests for network isomorphism, including the Fig. 2 reference schematic
// compared structurally against the synthesizer output.
#include <gtest/gtest.h>

#include "core/enhancer.hpp"
#include "core/fc_synthesizer.hpp"
#include "expr/parser.hpp"
#include "netlist/isomorphism.hpp"

namespace sable {
namespace {

DpdnNetwork fig2_fc_reference() {
  // Fig. 2 right, drawn by hand with a differently-named internal node.
  DpdnNetwork net(2);
  const NodeId w = net.add_internal_node("paper_W");
  net.add_switch(SignalLiteral{1, false}, DpdnNetwork::kNodeY,
                 DpdnNetwork::kNodeZ);                               // B'
  net.add_switch(SignalLiteral{1, true}, w, DpdnNetwork::kNodeZ);    // B
  net.add_switch(SignalLiteral{0, false}, DpdnNetwork::kNodeY, w);   // M2=A'
  net.add_switch(SignalLiteral{0, true}, DpdnNetwork::kNodeX, w);    // A
  return net;
}

TEST(IsomorphismTest, SynthesizedAndNandMatchesPaperSchematic) {
  VarTable vars;
  const ExprPtr f = parse_expression("A.B", vars);
  const DpdnNetwork synthesized = synthesize_fc_dpdn(f, 2);
  // Same circuit despite different device order and node naming.
  EXPECT_TRUE(networks_isomorphic(synthesized, fig2_fc_reference()));
}

TEST(IsomorphismTest, DetectsDifferentWiring) {
  VarTable vars;
  const ExprPtr f = parse_expression("A.B", vars);
  const DpdnNetwork fc = synthesize_fc_dpdn(f, 2);

  // Genuine network: same variables and device count, different wiring.
  DpdnNetwork genuine(2);
  const NodeId w = genuine.add_internal_node();
  genuine.add_switch(SignalLiteral{0, true}, DpdnNetwork::kNodeX, w);
  genuine.add_switch(SignalLiteral{1, true}, w, DpdnNetwork::kNodeZ);
  genuine.add_switch(SignalLiteral{0, false}, DpdnNetwork::kNodeY,
                     DpdnNetwork::kNodeZ);
  genuine.add_switch(SignalLiteral{1, false}, DpdnNetwork::kNodeY,
                     DpdnNetwork::kNodeZ);
  EXPECT_FALSE(networks_isomorphic(fc, genuine));
}

TEST(IsomorphismTest, DistinguishesLiteralPolarity) {
  DpdnNetwork n1(1);
  n1.add_switch(SignalLiteral{0, true}, DpdnNetwork::kNodeX,
                DpdnNetwork::kNodeZ);
  DpdnNetwork n2(1);
  n2.add_switch(SignalLiteral{0, false}, DpdnNetwork::kNodeX,
                DpdnNetwork::kNodeZ);
  EXPECT_FALSE(networks_isomorphic(n1, n2));
}

TEST(IsomorphismTest, SizeMismatchShortCircuits) {
  VarTable vars;
  const ExprPtr f = parse_expression("A.B", vars);
  EXPECT_FALSE(networks_isomorphic(synthesize_fc_dpdn(f, 2),
                                   synthesize_enhanced_dpdn(f, 2)));
}

TEST(IsomorphismTest, PassGateRoleMatters) {
  DpdnNetwork n1(1);
  const NodeId w1 = n1.add_internal_node();
  n1.add_pass_gate(0, DpdnNetwork::kNodeY, w1);
  DpdnNetwork n2(1);
  const NodeId w2 = n2.add_internal_node();
  n2.add_switch(SignalLiteral{0, true}, DpdnNetwork::kNodeY, w2);
  n2.add_switch(SignalLiteral{0, false}, DpdnNetwork::kNodeY, w2);
  // Same literals and endpoints but different roles: not the same cell.
  EXPECT_FALSE(networks_isomorphic(n1, n2));
}

TEST(IsomorphismTest, LargerNetworkRoundTrip) {
  VarTable vars;
  const ExprPtr f = parse_expression("(A+B).(C+D)", vars);
  const DpdnNetwork net = synthesize_fc_dpdn(f, 4);
  EXPECT_TRUE(networks_isomorphic(net, synthesize_fc_dpdn(f, 4)));
}

}  // namespace
}  // namespace sable
