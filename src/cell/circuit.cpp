#include "cell/circuit.hpp"

#include "util/error.hpp"

namespace sable {

std::size_t GateCircuit::add_cell(Cell cell) {
  cells_.push_back(std::move(cell));
  return cells_.size() - 1;
}

std::size_t GateCircuit::add_gate(std::size_t cell_index,
                                  std::vector<SignalRef> inputs,
                                  std::string name) {
  SABLE_REQUIRE(cell_index < cells_.size(), "unknown cell index");
  const Cell& cell = cells_[cell_index];
  SABLE_REQUIRE(inputs.size() == cell.num_inputs,
                "gate input count does not match its cell");
  for (const auto& in : inputs) {
    if (in.kind == SignalRef::Kind::kInput) {
      SABLE_REQUIRE(in.index < num_inputs_, "primary input out of range");
    } else {
      SABLE_REQUIRE(in.index < gates_.size(),
                    "gate may only reference earlier gates");
    }
  }
  if (name.empty()) name = "g" + std::to_string(gates_.size());
  gates_.push_back(GateInstance{std::move(name), cell_index, std::move(inputs)});
  return gates_.size() - 1;
}

std::size_t GateCircuit::total_dpdn_devices() const {
  std::size_t total = 0;
  for (const auto& g : gates_) {
    total += cells_[g.cell_index].network.device_count();
  }
  return total;
}

}  // namespace sable
