#include "spice/sources.hpp"

#include <cmath>

#include "util/error.hpp"

namespace sable::spice {

Waveform Waveform::dc(double value) {
  Waveform w;
  w.kind = WaveformKind::kDc;
  w.dc_value = value;
  return w;
}

Waveform Waveform::pulse(double v1, double v2, double delay, double rise,
                         double fall, double width, double period) {
  SABLE_REQUIRE(period > 0.0 && rise > 0.0 && fall > 0.0,
                "pulse requires positive period and edge times");
  Waveform w;
  w.kind = WaveformKind::kPulse;
  w.v1 = v1;
  w.v2 = v2;
  w.delay = delay;
  w.rise = rise;
  w.fall = fall;
  w.width = width;
  w.period = period;
  return w;
}

Waveform Waveform::pwl(std::vector<std::pair<double, double>> points) {
  SABLE_REQUIRE(!points.empty(), "PWL requires at least one point");
  for (std::size_t i = 1; i < points.size(); ++i) {
    SABLE_REQUIRE(points[i].first > points[i - 1].first,
                  "PWL times must be strictly increasing");
  }
  Waveform w;
  w.kind = WaveformKind::kPwl;
  w.points = std::move(points);
  return w;
}

double Waveform::at(double t) const {
  switch (kind) {
    case WaveformKind::kDc:
      return dc_value;
    case WaveformKind::kPulse: {
      if (t < delay) return v1;
      const double local = std::fmod(t - delay, period);
      if (local < rise) return v1 + (v2 - v1) * (local / rise);
      if (local < rise + width) return v2;
      if (local < rise + width + fall) {
        return v2 + (v1 - v2) * ((local - rise - width) / fall);
      }
      return v1;
    }
    case WaveformKind::kPwl: {
      if (t <= points.front().first) return points.front().second;
      for (std::size_t i = 1; i < points.size(); ++i) {
        if (t <= points[i].first) {
          const auto& [t0, v0] = points[i - 1];
          const auto& [t1, v1p] = points[i];
          return v0 + (v1p - v0) * (t - t0) / (t1 - t0);
        }
      }
      return points.back().second;
    }
  }
  SABLE_ASSERT(false, "unreachable waveform kind");
}

}  // namespace sable::spice
