// Replaying recorded corpora into the distinguisher pipeline: any attack
// the live engine can drive runs from disk instead, with no simulation
// and bit-identical results — the corpus preserves the canonical shard
// decomposition, so accumulation, reduction and finalization are the
// exact operations of the live run on the exact same blocks. Compressed
// (v2) corpora decode through per-thread scratch buffers on the way in;
// the decoded blocks are byte-identical to the recorded traces, so the
// bit-identity guarantee is unchanged.
#pragma once

#include <cstddef>
#include <span>

#include "dpa/distinguisher.hpp"
#include "io/corpus.hpp"
#include "io/manifest.hpp"

namespace sable {

struct RoundSpec;  // crypto/round_target.hpp
class WorkerPool;
class SharedCorpus;  // io/corpus_cache.hpp

/// Drives `distinguishers` over the recorded corpus, honoring the same
/// checkpoint/resume/fan-out controls as a live run. `round` must hash
/// to the corpus's spec (ManifestMismatchError otherwise) and every
/// distinguisher's data kind must match the corpus kind — a scalar
/// corpus cannot feed a time-resolved attack (InvalidArgument). Shards
/// are accumulated in parallel over `num_threads` workers (0 = hardware
/// concurrency) on `pool` (an internal pool when null). Returns true
/// when the campaign completed (results finalized), false for a partial
/// persisted run.
bool replay_distinguishers(const CorpusReader& corpus, const RoundSpec& round,
                           std::span<Distinguisher* const> distinguishers,
                           const CampaignPersistence& persist = {},
                           std::size_t num_threads = 0,
                           WorkerPool* pool = nullptr);

/// Same contract, but shards come through the SharedCorpus decoded-chunk
/// cache: concurrent evaluations (each calling this from its own thread)
/// share one mapping and decode every chunk at most once between them.
/// The round-spec validation is memoized on the SharedCorpus, so many
/// small evaluations pay it once.
bool replay_distinguishers(SharedCorpus& corpus, const RoundSpec& round,
                           std::span<Distinguisher* const> distinguishers,
                           const CampaignPersistence& persist = {},
                           std::size_t num_threads = 0,
                           WorkerPool* pool = nullptr);

/// Runs several independent attack sets over the corpus in ONE pass:
/// workers claim whole sets and stream every shard through the shared
/// cache, so a chunk is fetched/decoded once however many sets consume
/// it (the CLI's --all-subkeys corpus mode). Every set is validated,
/// accumulated over the full shard range and finalized; no
/// checkpoint/resume (the pass is one shot by construction).
void replay_shared(SharedCorpus& corpus, const RoundSpec& round,
                   std::span<const std::span<Distinguisher* const>> sets,
                   std::size_t num_threads = 0, WorkerPool* pool = nullptr);

}  // namespace sable
