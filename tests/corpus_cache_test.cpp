// SharedCorpus: the decoded-chunk cache serving N concurrent
// evaluations. The load-bearing claims under test: (1) concurrent
// evaluations replaying from one SharedCorpus decode each compressed
// chunk at most once between them (decode_count() is the witness, and
// the TSan CI job runs this binary); (2) shared-cache replay is
// bit-identical to plain CorpusReader replay; (3) raw corpora bypass
// the cache entirely (zero decodes, zero copies); (4) a bounded cache
// evicts and re-decodes instead of growing, and a corrupt chunk throws
// a typed error out of acquire() without wedging later acquirers.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "crypto/round_target.hpp"
#include "crypto/sboxes.hpp"
#include "dpa/attack.hpp"
#include "dpa/distinguisher.hpp"
#include "engine/trace_engine.hpp"
#include "io/corpus.hpp"
#include "io/corpus_cache.hpp"
#include "io/replay.hpp"
#include "util/error.hpp"

namespace sable {
namespace {

const Technology kTech = Technology::generic_180nm();

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "corpus_cache_" + name;
}

CampaignOptions small_options() {
  CampaignOptions options;
  options.num_traces = 3000;  // 7 shards of 448 with a ragged tail
  options.key = {0xB};
  options.noise_sigma = 2e-16;
  options.seed = 0x5EED;
  options.shard_size = 448;
  return options;
}

void expect_same_scores(const std::vector<double>& a,
                        const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t g = 0; g < a.size(); ++g) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[g]),
              std::bit_cast<std::uint64_t>(b[g]))
        << "guess " << g;
  }
}

// One recorded campaign per fixture instantiation, shared by the cases.
class SharedCorpusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
    options_ = small_options();
    compressed_path_ = temp_path("compressed.corpus");
    engine.record(options_, TraceDataKind::kScalar, compressed_path_);
    raw_path_ = temp_path("raw.corpus");
    engine.record(options_, TraceDataKind::kScalar, raw_path_,
                  kCorpusCompressionNone, kCorpusVersion2);

    const AttackSelector selector{.model = PowerModel::kHammingWeight};
    CpaDistinguisher ref(engine.spec(), selector);
    Distinguisher* const list[] = {&ref};
    engine.run_distinguishers(options_, list);
    ref_scores_ = ref.result().score;
  }

  CampaignOptions options_;
  std::string compressed_path_;
  std::string raw_path_;
  std::vector<double> ref_scores_;
};

TEST_F(SharedCorpusTest, ConcurrentEvaluationsDecodeEachChunkOnce) {
  SharedCorpus corpus(compressed_path_);
  const std::size_t shards = corpus.num_shards();
  ASSERT_EQ(shards, 7u);

  // Four concurrent evaluations, each driving its own distinguisher
  // over the whole corpus from its own thread — the deployment shape
  // the cache exists for.
  constexpr std::size_t kEvaluations = 4;
  TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
  const AttackSelector selector{.model = PowerModel::kHammingWeight};
  std::vector<CpaDistinguisher> cpas;
  cpas.reserve(kEvaluations);
  for (std::size_t k = 0; k < kEvaluations; ++k) {
    cpas.emplace_back(engine.spec(), selector);
  }
  std::vector<std::thread> threads;
  for (std::size_t k = 0; k < kEvaluations; ++k) {
    threads.emplace_back([&, k] {
      Distinguisher* const list[] = {&cpas[k]};
      replay_distinguishers(corpus, engine.round(), list, {},
                            /*num_threads=*/2);
    });
  }
  for (std::thread& t : threads) t.join();

  // The decode-once guarantee: 4 evaluations x 7 shards touched the
  // codec at most 7 times (exactly 7 — every shard was needed).
  EXPECT_EQ(corpus.decode_count(), shards);
  for (const CpaDistinguisher& cpa : cpas) {
    expect_same_scores(cpa.result().score, ref_scores_);
  }
}

TEST_F(SharedCorpusTest, SharedReplayMatchesPlainReplay) {
  TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
  const AttackSelector selector{.model = PowerModel::kHammingWeight};

  const CorpusReader plain(compressed_path_);
  CpaDistinguisher from_plain(engine.spec(), selector);
  Distinguisher* const list1[] = {&from_plain};
  EXPECT_TRUE(replay_distinguishers(plain, engine.round(), list1));

  SharedCorpus shared(compressed_path_);
  CpaDistinguisher from_shared(engine.spec(), selector);
  Distinguisher* const list2[] = {&from_shared};
  EXPECT_TRUE(replay_distinguishers(shared, engine.round(), list2));

  expect_same_scores(from_shared.result().score, from_plain.result().score);
  expect_same_scores(from_shared.result().score, ref_scores_);

  // The spec validation memoized on the first replay; a replay against a
  // DIFFERENT round must still be rejected, not waved through.
  TraceEngine other(present_spec(), LogicStyle::kSablGenuine, kTech);
  CpaDistinguisher wrong(other.spec(), selector);
  Distinguisher* const list3[] = {&wrong};
  EXPECT_THROW(replay_distinguishers(shared, other.round(), list3),
               ManifestMismatchError);
}

TEST_F(SharedCorpusTest, MultiSetOnePassMatchesIndividualReplays) {
  TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
  const AttackSelector selector{.model = PowerModel::kHammingWeight};

  SharedCorpus corpus(compressed_path_);
  CpaDistinguisher cpa_a(engine.spec(), selector);
  DomDistinguisher dom_a(
      engine.spec(),
      AttackSelector{.model = PowerModel::kHammingWeight, .bit = 1});
  CpaDistinguisher cpa_b(engine.spec(), selector);
  Distinguisher* const set_a[] = {&cpa_a, &dom_a};
  Distinguisher* const set_b[] = {&cpa_b};
  const std::span<Distinguisher* const> sets[] = {set_a, set_b};
  replay_shared(corpus, engine.round(), sets, /*num_threads=*/2);

  // One pass for both sets: still at most one decode per chunk.
  EXPECT_EQ(corpus.decode_count(), corpus.num_shards());
  expect_same_scores(cpa_a.result().score, ref_scores_);
  expect_same_scores(cpa_b.result().score, ref_scores_);

  const CorpusReader plain(compressed_path_);
  DomDistinguisher dom_ref(
      engine.spec(),
      AttackSelector{.model = PowerModel::kHammingWeight, .bit = 1});
  Distinguisher* const ref_list[] = {&dom_ref};
  EXPECT_TRUE(replay_distinguishers(plain, engine.round(), ref_list));
  expect_same_scores(dom_a.result().score, dom_ref.result().score);
}

TEST_F(SharedCorpusTest, RawCorpusBypassesCache) {
  SharedCorpus corpus(raw_path_);
  {
    const SharedCorpus::Lease lease = corpus.acquire(0);
    // Zero-copy: the lease aliases the shared mapping directly.
    EXPECT_EQ(lease.view().pts, corpus.reader().shard_plaintexts(0));
    EXPECT_EQ(lease.view().samples, corpus.reader().shard_samples(0));
  }
  TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
  CpaDistinguisher cpa(engine.spec(),
                       AttackSelector{.model = PowerModel::kHammingWeight});
  Distinguisher* const list[] = {&cpa};
  EXPECT_TRUE(replay_distinguishers(corpus, engine.round(), list));
  expect_same_scores(cpa.result().score, ref_scores_);
  EXPECT_EQ(corpus.decode_count(), 0u);
}

TEST_F(SharedCorpusTest, BoundedCacheEvictsAndRedecodes) {
  SharedCorpus corpus(compressed_path_, /*max_cached_shards=*/2);
  const std::size_t shards = corpus.num_shards();
  // Two sequential full passes over a 2-slot cache: every acquire past
  // the cap evicts the LRU slot, so the second pass re-decodes every
  // shard instead of hitting the (long-evicted) slots.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t s = 0; s < shards; ++s) {
      const SharedCorpus::Lease lease = corpus.acquire(s);
      EXPECT_EQ(lease.view().count, corpus.reader().shard_count(s));
    }
  }
  EXPECT_EQ(corpus.decode_count(), 2 * shards);

  // A held lease pins its slot: acquiring the same shard again while the
  // lease is live must not decode a second copy.
  const std::uint64_t before = corpus.decode_count();
  const SharedCorpus::Lease held = corpus.acquire(0);
  const SharedCorpus::Lease again = corpus.acquire(0);
  EXPECT_EQ(again.view().pts, held.view().pts);
  EXPECT_EQ(corpus.decode_count(), before + 1);
}

TEST_F(SharedCorpusTest, CorruptChunkThrowsTypedAndDoesNotWedge) {
  // Overwrite shard 0's stored chunk with 0xFF: the RLE framing decodes
  // to an over-long token and must throw a typed error from acquire()
  // — in every acquiring thread, however many race — while later
  // acquires of GOOD shards keep working.
  std::vector<std::uint8_t> bytes;
  {
    std::ifstream in(compressed_path_, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  const CorpusReader probe(compressed_path_);
  const std::size_t stored =
      static_cast<std::size_t>(probe.shard_stored_bytes(0));
  // Chunk 0 starts right after the header+index block; its offset is
  // where the first shard's data was written. Find it via the raw view
  // machinery: v2 index entries are 32 bytes starting at offset 96.
  std::uint64_t chunk0 = 0;
  std::memcpy(&chunk0, bytes.data() + 96, sizeof(chunk0));
  ASSERT_LT(chunk0 + stored, bytes.size());
  std::fill(bytes.begin() + static_cast<std::ptrdiff_t>(chunk0),
            bytes.begin() + static_cast<std::ptrdiff_t>(chunk0 + stored),
            std::uint8_t{0xFF});
  const std::string p = temp_path("corrupt.corpus");
  {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  SharedCorpus corpus(p);
  constexpr std::size_t kThreads = 4;
  std::vector<int> threw(kThreads, 0);
  std::vector<std::thread> threads;
  for (std::size_t k = 0; k < kThreads; ++k) {
    threads.emplace_back([&, k] {
      try {
        (void)corpus.acquire(0);
      } catch (const IoError&) {
        threw[k] = 1;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (std::size_t k = 0; k < kThreads; ++k) {
    EXPECT_EQ(threw[k], 1) << "thread " << k;
  }
  // The failed slot was erased, not wedged: good shards still decode.
  const SharedCorpus::Lease ok = corpus.acquire(1);
  EXPECT_EQ(ok.view().count, corpus.reader().shard_count(1));
  EXPECT_THROW(corpus.acquire(corpus.num_shards()), ShardIndexError);
}

}  // namespace
}  // namespace sable
