// Tests for the differential cell library and gate-level circuits.
#include <gtest/gtest.h>

#include "cell/builder.hpp"
#include "cell/circuit_sim.hpp"
#include "cell/library.hpp"
#include "core/checks.hpp"
#include "expr/parser.hpp"
#include "expr/truth_table.hpp"
#include "util/error.hpp"

namespace sable {
namespace {

const Technology kTech = Technology::generic_180nm();

TEST(LibraryTest, EveryCellVerifiesInEveryVariant) {
  for (CellFunction f : all_cell_functions()) {
    const ExprPtr expr = cell_expression(f);
    for (NetworkVariant v :
         {NetworkVariant::kGenuine, NetworkVariant::kFullyConnected,
          NetworkVariant::kEnhanced}) {
      const Cell cell = make_cell(f, v, kTech);
      EXPECT_EQ(cell.num_inputs, cell_input_count(f));
      const FunctionalityReport report =
          check_functionality(cell.network, expr);
      EXPECT_TRUE(report.ok)
          << to_string(f) << " variant " << to_string(v);
      if (v != NetworkVariant::kGenuine) {
        EXPECT_TRUE(check_full_connectivity(cell.network).fully_connected)
            << to_string(f) << " variant " << to_string(v);
      }
    }
  }
}

TEST(LibraryTest, CellNamesEncodeFunctionAndVariant) {
  const Cell cell =
      make_cell(CellFunction::kOai22, NetworkVariant::kEnhanced, kTech);
  EXPECT_EQ(cell.name, "OAI22_enhanced");
}

TEST(LibraryTest, CustomCell) {
  VarTable vars;
  const ExprPtr f = parse_expression("A.(B + C')", vars);
  const Cell cell = make_custom_cell("custom", f, 3,
                                     NetworkVariant::kFullyConnected, kTech);
  EXPECT_TRUE(check_functionality(cell.network, f).ok);
  EXPECT_TRUE(check_full_connectivity(cell.network).fully_connected);
}

TEST(CircuitTest, RejectsMalformedGates) {
  GateCircuit circuit(2);
  const std::size_t and2 = circuit.add_cell(
      make_cell(CellFunction::kAnd2, NetworkVariant::kFullyConnected, kTech));
  EXPECT_THROW(circuit.add_gate(and2, {SignalRef::input(0)}),
               InvalidArgument);  // wrong arity
  EXPECT_THROW(circuit.add_gate(and2, {SignalRef::input(0),
                                       SignalRef::input(7)}),
               InvalidArgument);  // input out of range
  EXPECT_THROW(circuit.add_gate(and2, {SignalRef::input(0),
                                       SignalRef::gate(3)}),
               InvalidArgument);  // forward reference
  EXPECT_THROW(circuit.add_gate(99, {}), InvalidArgument);
}

TEST(CircuitTest, EvaluatesGateTree) {
  // out = (A.B) + C via two gates.
  GateCircuit circuit(3);
  const std::size_t and2 = circuit.add_cell(
      make_cell(CellFunction::kAnd2, NetworkVariant::kFullyConnected, kTech));
  const std::size_t or2 = circuit.add_cell(
      make_cell(CellFunction::kOr2, NetworkVariant::kFullyConnected, kTech));
  const std::size_t g0 =
      circuit.add_gate(and2, {SignalRef::input(0), SignalRef::input(1)});
  const std::size_t g1 =
      circuit.add_gate(or2, {SignalRef::gate(g0), SignalRef::input(2)});
  circuit.mark_output(SignalRef::gate(g1));

  for (std::uint64_t a = 0; a < 8; ++a) {
    const bool expected = (((a & 1) != 0) && ((a & 2) != 0)) || ((a & 4) != 0);
    EXPECT_EQ(evaluate_circuit(circuit, a), expected ? 1u : 0u) << a;
  }
}

TEST(CircuitTest, NegatedSignalRefsAreFreeInversions) {
  // out = A NAND B == (A.B)' via an output rail swap.
  GateCircuit circuit(2);
  const std::size_t and2 = circuit.add_cell(
      make_cell(CellFunction::kAnd2, NetworkVariant::kFullyConnected, kTech));
  const std::size_t g0 =
      circuit.add_gate(and2, {SignalRef::input(0), SignalRef::input(1)});
  circuit.mark_output(SignalRef::gate(g0, /*positive=*/false));
  EXPECT_EQ(evaluate_circuit(circuit, 0b11), 0u);
  EXPECT_EQ(evaluate_circuit(circuit, 0b01), 1u);
}

TEST(BuilderTest, BuildsEquivalentCircuitFromExpression) {
  VarTable vars;
  const ExprPtr f = parse_expression("A.(B + C.D) + B'.D", vars);
  const GateCircuit circuit =
      build_from_expressions({f}, 4, NetworkVariant::kFullyConnected, kTech);
  for (std::uint64_t a = 0; a < 16; ++a) {
    EXPECT_EQ(evaluate_circuit(circuit, a) != 0, evaluate(f, a)) << a;
  }
  EXPECT_GT(circuit.gates().size(), 1u);
  EXPECT_GT(circuit.total_dpdn_devices(), 0u);
}

TEST(BuilderTest, SingleComplexGateMatchesTree) {
  VarTable vars;
  const ExprPtr f = parse_expression("(A+B).(C+D)", vars);
  const GateCircuit one =
      build_single_gate(f, 4, NetworkVariant::kFullyConnected, kTech);
  const GateCircuit tree =
      build_from_expressions({f}, 4, NetworkVariant::kFullyConnected, kTech);
  EXPECT_EQ(one.gates().size(), 1u);
  for (std::uint64_t a = 0; a < 16; ++a) {
    EXPECT_EQ(evaluate_circuit(one, a), evaluate_circuit(tree, a)) << a;
  }
}

TEST(CircuitSimTest, DifferentialFcCircuitIsConstantEnergy) {
  VarTable vars;
  const ExprPtr f = parse_expression("A.(B + C.D) + B'.D", vars);
  const GateCircuit circuit =
      build_from_expressions({f}, 4, NetworkVariant::kFullyConnected, kTech);
  DifferentialCircuitSim sim(circuit);
  const double e0 = sim.cycle(0).energy;
  for (std::uint64_t a = 1; a < 16; ++a) {
    EXPECT_DOUBLE_EQ(sim.cycle(a).energy, e0) << a;
  }
}

TEST(CircuitSimTest, GenuineCircuitEnergyVaries) {
  VarTable vars;
  const ExprPtr f = parse_expression("A.B + C.D", vars);
  const GateCircuit circuit =
      build_from_expressions({f}, 4, NetworkVariant::kGenuine, kTech);
  DifferentialCircuitSim sim(circuit);
  double lo = 1e9;
  double hi = 0.0;
  for (std::uint64_t a = 0; a < 16; ++a) {
    const double e = sim.cycle(a).energy;
    lo = std::min(lo, e);
    hi = std::max(hi, e);
  }
  EXPECT_GT(hi, lo);
}

TEST(CircuitSimTest, CmosEnergyFollowsRisingTransitions) {
  GateCircuit circuit(2);
  const std::size_t and2 = circuit.add_cell(
      make_cell(CellFunction::kAnd2, NetworkVariant::kFullyConnected, kTech));
  const std::size_t g0 =
      circuit.add_gate(and2, {SignalRef::input(0), SignalRef::input(1)});
  circuit.mark_output(SignalRef::gate(g0));
  const double e_sw = 1.0;  // 1 J per rising edge makes counting explicit
  CmosCircuitSim sim(circuit, e_sw);
  EXPECT_EQ(sim.cycle(0b11).energy, e_sw);  // 0 -> 1 rises
  EXPECT_EQ(sim.cycle(0b11).energy, 0.0);   // stays 1: free
  EXPECT_EQ(sim.cycle(0b01).energy, 0.0);   // 1 -> 0: no supply draw
  EXPECT_EQ(sim.cycle(0b11).energy, e_sw);  // rises again
}

TEST(CircuitSimTest, OutputsMatchReferenceEvaluation) {
  VarTable vars;
  const ExprPtr f0 = parse_expression("A ^ B ^ C", vars);
  const ExprPtr f1 = parse_expression("A.B + C", vars);
  const GateCircuit circuit = build_from_expressions(
      {f0, f1}, 3, NetworkVariant::kFullyConnected, kTech);
  DifferentialCircuitSim sim(circuit);
  for (std::uint64_t a = 0; a < 8; ++a) {
    const std::uint64_t expected = (evaluate(f0, a) ? 1u : 0u) |
                                   (evaluate(f1, a) ? 2u : 0u);
    EXPECT_EQ(sim.cycle(a).outputs, expected) << a;
  }
}

}  // namespace
}  // namespace sable
