// Cycle-based simulation of gate-level circuits with per-gate energy.
//
// Two simulators share the circuit description:
//  - DifferentialCircuitSim: every gate is a dynamic differential (SABL)
//    gate simulated at switch level; per-cycle energy is the sum of gate
//    energies, and floating-node state persists across cycles (the genuine
//    variant leaks data through it).
//  - CmosCircuitSim: the industry-baseline model — static CMOS gates
//    consume C*VDD^2 on every 0->1 output transition (Hamming-distance
//    leakage); this is the reference DPA-vulnerable implementation.
#pragma once

#include <cstdint>
#include <vector>

#include "cell/circuit.hpp"
#include "switchsim/cycle_sim.hpp"

namespace sable {

struct CycleResult {
  std::uint64_t outputs = 0;  // bit i = value of circuit output i
  double energy = 0.0;        // supply energy of the cycle [J]
};

/// Time-resolved variant: one energy sample per logic level (gates at the
/// same topological depth switch together), the granularity a sampling
/// oscilloscope sees in a real DPA measurement.
struct SampledCycleResult {
  std::uint64_t outputs = 0;
  std::vector<double> level_energy;
};

/// Topological level of every gate (primary inputs are level 0; a gate is
/// one past its deepest input). Returned per gate instance.
std::vector<std::size_t> gate_levels(const GateCircuit& circuit);

class DifferentialCircuitSim {
 public:
  explicit DifferentialCircuitSim(const GateCircuit& circuit);

  /// As above, but with one energy model per gate *instance* (e.g. with
  /// per-instance routing loads from src/balance). `models` must have one
  /// entry per gate.
  DifferentialCircuitSim(const GateCircuit& circuit,
                         std::vector<GateEnergyModel> models);

  /// Evaluates one clock cycle with the given primary input bits.
  CycleResult cycle(std::uint64_t input_bits);

  /// As cycle(), with the energy split per logic level.
  SampledCycleResult cycle_sampled(std::uint64_t input_bits);

  /// Number of logic levels (= samples per cycle).
  std::size_t num_levels() const { return num_levels_; }

 private:
  const GateCircuit& circuit_;
  std::vector<SablGateSim> gate_sims_;  // one per gate instance
  std::vector<std::size_t> levels_;
  std::size_t num_levels_ = 0;
};

class CmosCircuitSim {
 public:
  /// `switch_energy` is the energy of one output 0->1 transition [J].
  CmosCircuitSim(const GateCircuit& circuit, double switch_energy);

  CycleResult cycle(std::uint64_t input_bits);

 private:
  const GateCircuit& circuit_;
  double switch_energy_;
  std::vector<bool> previous_values_;
  bool has_previous_ = false;
};

/// Pure functional evaluation (no energy), for reference checks.
std::uint64_t evaluate_circuit(const GateCircuit& circuit,
                               std::uint64_t input_bits);

}  // namespace sable
