// §4.2: design method given an existing differential pull-down network.
//
// The paper phrases the transformation as schematic surgery:
//   step 1: identify all the networks in series;
//   step 2a: open the corresponding dual parallel networks at the bottom of
//            the component dual to the top component of the series network;
//   step 2b: connect the opened parallel connections to the internal nodes
//            of the corresponding series connections;
//   step 3: unroll the network.
//
// For a genuine network (two independent series-parallel branches that are
// duals of one another) this surgery is exactly equivalent to: recover the
// series-parallel expression f of the true branch, then re-emit with the
// §4.1 recursion — the recursion's case A/B terminal wiring *is* the
// "open at the dual component and connect to the internal node" step, and
// the recursive emission is the "unroll". We implement it that way: the
// extraction preserves device order, so the output reproduces the paper's
// Fig. 5 network device-for-device, and the device count is preserved.
#pragma once

#include <string>
#include <vector>

#include "expr/expression.hpp"
#include "netlist/network.hpp"

namespace sable {

struct TransformResult {
  DpdnNetwork network;           // the fully connected result
  ExprPtr true_branch_expr;      // f extracted from the X-Z branch
  ExprPtr false_branch_expr;     // g extracted from the Y-Z branch
  bool branches_complementary = false;  // g == f' semantically
  bool device_count_preserved = false;
  /// Human-readable record of the §4.2 steps (for the Fig. 5 narrative).
  std::vector<std::string> steps;
};

/// Transforms a genuine DPDN into a fully connected one (§4.2).
/// Throws InvalidArgument when the input is not a genuine two-branch
/// series-parallel differential network.
TransformResult transform_to_fully_connected(const DpdnNetwork& genuine,
                                             const VarTable& vars);

}  // namespace sable
