// Trace-generation throughput: scalar one-at-a-time simulation vs. the
// 64-wide bit-parallel trace engine, on the paper's PRESENT S-box target.
//
// The engine exists because MTD curves need 10^5–10^7 traces; this bench
// reports traces/sec for both paths and the speedup (acceptance: >= 10x),
// plus the end-to-end rate of a fully streaming one-pass CPA campaign.
#include <chrono>
#include <cstdio>

#include "crypto/target.hpp"
#include "dpa/streaming.hpp"
#include "engine/trace_engine.hpp"
#include "util/rng.hpp"

using namespace sable;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Throughput {
  double scalar_tps = 0.0;
  double batched_tps = 0.0;
  double checksum = 0.0;  // keeps the optimizer honest
};

Throughput measure_style(LogicStyle style, std::size_t num_traces) {
  const Technology tech = Technology::generic_180nm();
  const SboxSpec spec = present_spec();
  const std::uint8_t key = 0xB;
  Throughput result;

  {
    SboxTarget target(spec, style, tech);
    Rng rng(0xBE7C);
    double sum = 0.0;
    const auto start = Clock::now();
    for (std::size_t i = 0; i < num_traces; ++i) {
      const auto pt = static_cast<std::uint8_t>(rng.below(16));
      sum += target.trace(pt, key, 0.0, rng);
    }
    result.scalar_tps = static_cast<double>(num_traces) / seconds_since(start);
    result.checksum += sum;
  }

  {
    TraceEngine engine(spec, style, tech);
    CampaignOptions options;
    options.num_traces = num_traces;
    options.key = key;
    options.seed = 0xBE7C;
    double sum = 0.0;
    const auto start = Clock::now();
    engine.stream(options, [&](const std::uint8_t*, const double* samples,
                               std::size_t n) {
      for (std::size_t i = 0; i < n; ++i) sum += samples[i];
    });
    result.batched_tps = static_cast<double>(num_traces) / seconds_since(start);
    result.checksum -= sum;
  }
  return result;
}

}  // namespace

int main() {
  const std::size_t num_traces = 200000;
  std::printf("== trace engine throughput: PRESENT S-box, %zu traces ======\n",
              num_traces);
  std::printf("%-22s %14s %14s %9s %8s\n", "logic style", "scalar [tr/s]",
              "64-wide [tr/s]", "speedup", ">=10x");
  bool all_pass = true;
  for (LogicStyle style :
       {LogicStyle::kStaticCmos, LogicStyle::kSablGenuine,
        LogicStyle::kSablFullyConnected, LogicStyle::kSablEnhanced,
        LogicStyle::kWddlBalanced}) {
    const Throughput t = measure_style(style, num_traces);
    const double speedup = t.batched_tps / t.scalar_tps;
    const bool pass = speedup >= 10.0;
    all_pass = all_pass && pass;
    std::printf("%-22s %14.0f %14.0f %8.1fx %8s\n", to_string(style),
                t.scalar_tps, t.batched_tps, speedup, pass ? "yes" : "NO");
  }

  // End-to-end: streaming one-pass CPA at MTD scale, nothing retained.
  {
    const Technology tech = Technology::generic_180nm();
    TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, tech);
    CampaignOptions options;
    options.num_traces = 1000000;
    options.key = 0x7;
    options.noise_sigma = 2e-16;
    const auto start = Clock::now();
    const AttackResult r =
        engine.cpa_campaign(options, PowerModel::kHammingWeight);
    const double dt = seconds_since(start);
    std::printf(
        "\nstreaming CPA campaign: %zu traces in %.2f s (%.0f traces/s),\n"
        "recovered key 0x%X (rank %zu), O(guesses) memory, one pass\n",
        options.num_traces, dt,
        static_cast<double>(options.num_traces) / dt, r.best_guess,
        r.rank_of(options.key));
  }
  return all_pass ? 0 : 1;
}
