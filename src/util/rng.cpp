#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace sable {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  SABLE_ASSERT(bound > 0, "Rng::below requires a positive bound");
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::gaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  while (u1 == 0.0) u1 = uniform();
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586;
  spare_ = mag * std::sin(two_pi * u2);
  has_spare_ = true;
  return mag * std::cos(two_pi * u2);
}

bool Rng::chance(double p) { return uniform() < p; }

}  // namespace sable
