// Export of circuits to a SPICE deck (ngspice-compatible).
//
// Everything this library simulates internally can be re-run in ngspice for
// cross-validation: level-1 .model cards carry the same parameters the
// internal engine uses, and PULSE/PWL sources are emitted verbatim.
#pragma once

#include <string>

#include "spice/circuit.hpp"

namespace sable::spice {

struct ExportOptions {
  std::string title = "sable export";
  /// Transient card parameters; tstop <= 0 omits the .tran card.
  double tran_step = 2e-12;
  double tran_stop = 0.0;
};

/// Renders the circuit as a SPICE deck. Distinct MOSFET parameter sets get
/// numbered .model cards (nmos0, pmos0, ...).
std::string to_spice_deck(const Circuit& circuit,
                          const ExportOptions& options = {});

}  // namespace sable::spice
