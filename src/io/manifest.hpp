// Campaign identity and persistence knobs.
//
// A CampaignManifest pins everything a trace stream is a pure function
// of — the round's functional spec hash, the seed, trace count, resolved
// shard size and key — so every persisted artifact (recorded corpus,
// checkpoint, partial worker state) can prove at load time that it
// belongs to the campaign the caller is running. A mismatch on ANY field
// means the bytes on disk describe a different trace stream; loaders
// throw ManifestMismatchError naming the first differing field rather
// than silently folding foreign state into a result.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace sable {

class ByteReader;
class ByteWriter;

/// The identity of a campaign's trace stream: two campaigns with equal
/// manifests generate bit-identical traces (the determinism contract in
/// engine/trace_engine.hpp). shard_size and num_shards are stored
/// RESOLVED (campaign_shard_size / layout), never the 0 autotune
/// sentinel, so a manifest's shard decomposition is explicit on disk.
struct CampaignManifest {
  /// Functional hash of the RoundSpec (crypto/round_target.hpp:
  /// round_spec_hash) — style, instance count, per-instance truth tables.
  std::uint64_t spec_hash = 0;
  std::uint64_t seed = 0;
  std::uint64_t num_traces = 0;
  std::uint64_t shard_size = 0;  // resolved, 64-granular
  std::uint64_t num_shards = 0;
  /// Stored as the IEEE-754 bit pattern, compared exactly: noise enters
  /// the simulated stream, so "close" sigmas are different campaigns.
  double noise_sigma = 0.0;
  /// Packed round key (CampaignOptions::key).
  std::vector<std::uint8_t> key;

  bool operator==(const CampaignManifest&) const = default;

  void save(ByteWriter& writer) const;
  void load(ByteReader& reader);
};

/// Throws ManifestMismatchError (tagged with `path`) naming the first
/// field on which `actual` disagrees with `expected`; no-op when equal.
void require_manifest_match(const std::string& path,
                            const CampaignManifest& expected,
                            const CampaignManifest& actual);

/// "All shards" sentinel for CampaignPersistence::shard_end.
inline constexpr std::size_t kAllShards =
    std::numeric_limits<std::size_t>::max();

/// Checkpoint/resume and fan-out controls of a persisted campaign run
/// (TraceEngine::run_distinguishers / replay_distinguishers). Defaults
/// reproduce the plain in-memory run: no resume, no checkpointing, every
/// shard.
struct CampaignPersistence {
  /// Load this campaign-state file first and skip its covered shards.
  /// Empty = fresh start. The file's manifest must match the campaign.
  std::string resume_path;
  /// Write campaign state here — after every wave of
  /// checkpoint_every_shards shards (0 = only once, at the end of this
  /// invocation's range). Empty = never checkpoint. Writes are atomic,
  /// so an interrupted run leaves the previous checkpoint intact.
  std::string checkpoint_path;
  std::size_t checkpoint_every_shards = 0;
  /// Canonical shard range [shard_begin, shard_end) THIS invocation
  /// covers — the multi-process fan-out knob: N workers each take a
  /// disjoint range and checkpoint a partial state, merge_partials folds
  /// them. shard_end is clamped to the campaign's shard count.
  std::size_t shard_begin = 0;
  std::size_t shard_end = kAllShards;
};

}  // namespace sable
