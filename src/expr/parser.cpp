#include "expr/parser.hpp"

#include <cctype>
#include <string>

#include "util/error.hpp"

namespace sable {

namespace {

class Parser {
 public:
  Parser(std::string_view text, VarTable& vars) : text_(text), vars_(vars) {}

  ExprPtr parse() {
    ExprPtr e = parse_or();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing input");
    return e;
  }

 private:
  ExprPtr parse_or() {
    ExprPtr e = parse_xor();
    for (;;) {
      skip_ws();
      if (accept('+') || accept('|')) {
        e = Expr::disj2(e, parse_xor());
      } else {
        return e;
      }
    }
  }

  ExprPtr parse_xor() {
    ExprPtr e = parse_and();
    for (;;) {
      skip_ws();
      if (accept('^')) {
        e = Expr::exclusive_or(e, parse_and());
      } else {
        return e;
      }
    }
  }

  ExprPtr parse_and() {
    ExprPtr e = parse_unary();
    for (;;) {
      skip_ws();
      if (accept('.') || accept('&') || accept('*')) {
        e = Expr::conj2(e, parse_unary());
      } else {
        return e;
      }
    }
  }

  ExprPtr parse_unary() {
    skip_ws();
    if (accept('!') || accept('~')) return Expr::negate(parse_unary());
    ExprPtr e = parse_primary();
    // Postfix complement, possibly repeated (A'' == A).
    for (;;) {
      skip_ws();
      if (accept('\'')) {
        e = Expr::negate(e);
      } else {
        return e;
      }
    }
  }

  ExprPtr parse_primary() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      ExprPtr e = parse_or();
      skip_ws();
      if (!accept(')')) fail("expected ')'");
      return e;
    }
    if (c == '0' || c == '1') {
      ++pos_;
      return Expr::constant(c == '1');
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      const std::string name(text_.substr(start, pos_ - start));
      return Expr::variable(vars_.intern(name));
    }
    fail(std::string("unexpected character '") + c + "'");
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool accept(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[noreturn]] void fail(const std::string& why) {
    throw ParseError("parse error at position " + std::to_string(pos_) + ": " +
                     why + " in \"" + std::string(text_) + "\"");
  }

  std::string_view text_;
  VarTable& vars_;
  std::size_t pos_ = 0;
};

}  // namespace

ExprPtr parse_expression(std::string_view text, VarTable& vars) {
  return Parser(text, vars).parse();
}

}  // namespace sable
