#include "crypto/leakage.hpp"

#include <bit>

#include "crypto/round_target.hpp"
#include "util/error.hpp"

namespace sable {

const char* to_string(PowerModel model) {
  switch (model) {
    case PowerModel::kSboxOutputBit:
      return "sbox-output-bit";
    case PowerModel::kHammingWeight:
      return "hamming-weight";
  }
  SABLE_ASSERT(false, "unreachable power model");
}

double predict_leakage(const SboxSpec& spec, PowerModel model,
                       std::uint8_t pt, std::uint8_t guess, std::size_t bit) {
  const std::uint8_t x = static_cast<std::uint8_t>(
      (pt ^ guess) & ((1u << spec.in_bits) - 1u));
  const std::uint8_t y = spec.apply(x);
  switch (model) {
    case PowerModel::kSboxOutputBit:
      return static_cast<double>((y >> bit) & 1u);
    case PowerModel::kHammingWeight:
      return static_cast<double>(std::popcount(y));
  }
  SABLE_ASSERT(false, "unreachable power model");
}

std::vector<double> prediction_table(const SboxSpec& spec, PowerModel model,
                                     std::size_t bit) {
  const std::size_t num_guesses = std::size_t{1} << spec.in_bits;
  const std::size_t num_plaintexts = num_guesses;
  std::vector<double> table(num_guesses * num_plaintexts);
  for (std::size_t pt = 0; pt < num_plaintexts; ++pt) {
    for (std::size_t g = 0; g < num_guesses; ++g) {
      table[pt * num_guesses + g] =
          predict_leakage(spec, model, static_cast<std::uint8_t>(pt),
                          static_cast<std::uint8_t>(g), bit);
    }
  }
  return table;
}

std::shared_ptr<const std::vector<double>> shared_prediction_table(
    const SboxSpec& spec, PowerModel model, std::size_t bit) {
  return std::make_shared<const std::vector<double>>(
      prediction_table(spec, model, bit));
}

void validate_attack_selector(const RoundSpec& round,
                              const AttackSelector& selector,
                              bool require_bit) {
  SABLE_REQUIRE(selector.sbox_index < round.num_sboxes(),
                "AttackSelector::sbox_index out of range for the round");
  if (require_bit || selector.model == PowerModel::kSboxOutputBit) {
    SABLE_REQUIRE(selector.bit < round.sboxes[selector.sbox_index].out_bits,
                  "AttackSelector::bit out of range for the attacked S-box");
  }
}

}  // namespace sable
