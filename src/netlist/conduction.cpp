#include "netlist/conduction.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <set>

#include "netlist/conduction_impl.hpp"
#include "util/error.hpp"

namespace sable {

UnionFind conduction_components(const DpdnNetwork& net,
                                std::uint64_t assignment) {
  UnionFind uf(net.node_count());
  for (const auto& d : net.devices()) {
    if (d.gate.conducts(assignment)) uf.unite(d.a, d.b);
  }
  return uf;
}

bool conducts(const DpdnNetwork& net, std::uint64_t assignment, NodeId from,
              NodeId to) {
  UnionFind uf = conduction_components(net, assignment);
  return uf.same(from, to);
}

TruthTable conduction_function(const DpdnNetwork& net, NodeId from,
                               NodeId to) {
  TruthTable t(net.num_vars());
  for (std::size_t row = 0; row < t.num_rows(); ++row) {
    t.set(row, conducts(net, row, from, to));
  }
  return t;
}

std::vector<bool> connected_to_external(const DpdnNetwork& net,
                                        std::uint64_t assignment) {
  UnionFind uf = conduction_components(net, assignment);
  const std::size_t cx = uf.find(DpdnNetwork::kNodeX);
  const std::size_t cy = uf.find(DpdnNetwork::kNodeY);
  const std::size_t cz = uf.find(DpdnNetwork::kNodeZ);
  std::vector<bool> out(net.node_count(), false);
  for (NodeId n = 0; n < net.node_count(); ++n) {
    const std::size_t c = uf.find(n);
    out[n] = (c == cx || c == cy || c == cz);
  }
  return out;
}

// Portable-width instantiations only; Word256/512 live in src/simd/ (see
// conduction_impl.hpp). std::uint64_t is the historic 64-lane kernel every
// scalar-facing query below runs on.
SABLE_FOR_EACH_PORTABLE_LANE_WORD(SABLE_INSTANTIATE_CONDUCTION)

std::vector<std::uint64_t> connected_to_external_batch(
    const DpdnNetwork& net, const std::vector<std::uint64_t>& var_words) {
  std::vector<std::uint64_t> masks;
  device_conduction_masks(net, var_words, masks);
  std::vector<std::uint64_t> reach(net.node_count(), 0);
  reach[DpdnNetwork::kNodeX] = ~std::uint64_t{0};
  reach[DpdnNetwork::kNodeY] = ~std::uint64_t{0};
  reach[DpdnNetwork::kNodeZ] = ~std::uint64_t{0};
  propagate_conduction(net, masks, reach);
  return reach;
}

std::uint64_t conducts_batch(const DpdnNetwork& net,
                             const std::vector<std::uint64_t>& var_words,
                             NodeId from, NodeId to) {
  std::vector<std::uint64_t> masks;
  device_conduction_masks(net, var_words, masks);
  std::vector<std::uint64_t> reach(net.node_count(), 0);
  reach[to] = ~std::uint64_t{0};
  propagate_conduction(net, masks, reach);
  return reach[from];
}

namespace {

struct PathSearch {
  const DpdnNetwork& net;
  const std::vector<std::vector<std::size_t>> adj;
  NodeId target;
  std::size_t max_paths;
  std::vector<ConductionPath>& out;
  std::vector<bool> on_path_node;
  std::vector<std::size_t> device_stack;

  PathSearch(const DpdnNetwork& n, NodeId to, std::size_t cap,
             std::vector<ConductionPath>& o)
      : net(n),
        adj(n.adjacency()),
        target(to),
        max_paths(cap),
        out(o),
        on_path_node(n.node_count(), false) {}

  void emit() {
    ConductionPath p;
    p.device_indices = device_stack;
    // A path is satisfiable unless two *logic* switches on it demand
    // opposite polarities of the same variable. Pass-gate halves never
    // constrain: the parallel partner provides the other polarity.
    std::set<VarId> vars;
    std::set<std::pair<VarId, bool>> required;
    bool sat = true;
    for (std::size_t idx : device_stack) {
      const Switch& d = net.devices()[idx];
      vars.insert(d.gate.var);
      if (d.role == DeviceRole::kLogic) {
        required.insert({d.gate.var, d.gate.positive});
        if (required.count({d.gate.var, !d.gate.positive})) sat = false;
      }
    }
    p.satisfiable = sat;
    p.variables.assign(vars.begin(), vars.end());
    out.push_back(std::move(p));
  }

  void dfs(NodeId node) {
    if (out.size() >= max_paths) return;
    if (node == target) {
      emit();
      return;
    }
    on_path_node[node] = true;
    for (std::size_t idx : adj[node]) {
      const Switch& d = net.devices()[idx];
      const NodeId next = d.other(node);
      if (on_path_node[next]) continue;
      // Both external endpoints other than the target act as walls: a
      // simple conduction path never passes *through* X, Y or Z.
      if (net.is_external(next) && next != target) continue;
      device_stack.push_back(idx);
      dfs(next);
      device_stack.pop_back();
    }
    on_path_node[node] = false;
  }
};

}  // namespace

std::vector<ConductionPath> enumerate_paths(const DpdnNetwork& net,
                                            NodeId from, NodeId to,
                                            std::size_t max_paths) {
  std::vector<ConductionPath> out;
  PathSearch search(net, to, max_paths, out);
  search.dfs(from);
  return out;
}

std::size_t shortest_conducting_path(const DpdnNetwork& net,
                                     std::uint64_t assignment, NodeId from,
                                     NodeId to) {
  const auto adj = net.adjacency();
  std::vector<std::size_t> dist(net.node_count(),
                                std::numeric_limits<std::size_t>::max());
  std::deque<NodeId> queue;
  dist[from] = 0;
  queue.push_back(from);
  while (!queue.empty()) {
    const NodeId node = queue.front();
    queue.pop_front();
    if (node == to) return dist[node];
    for (std::size_t idx : adj[node]) {
      const Switch& d = net.devices()[idx];
      if (!d.gate.conducts(assignment)) continue;
      const NodeId next = d.other(node);
      if (dist[next] != std::numeric_limits<std::size_t>::max()) continue;
      dist[next] = dist[node] + 1;
      queue.push_back(next);
    }
  }
  return dist[to];
}

}  // namespace sable
