// Dumps the Fig. 3 waveforms as CSV for plotting.
//
// Runs the transistor-level SABL AND-NAND gate through the (0,1)-input and
// (1,1)-input events of the paper's Fig. 3 and writes time, output
// voltages, DPDN node voltages and the supply current to stdout (redirect
// to a file and plot with any tool).
#include <cstdio>
#include <string>

#include "core/fc_synthesizer.hpp"
#include "expr/parser.hpp"
#include "sabl/testbench.hpp"

using namespace sable;

int main(int argc, char** argv) {
  VarTable vars;
  const ExprPtr f = parse_expression("A.B", vars);
  const DpdnNetwork net = synthesize_fc_dpdn(f, 2);
  const Technology tech = Technology::generic_180nm();
  const SizingPlan sizing = SizingPlan::defaults(tech);

  // Fig. 3: (0,1)-input (A=0, B=1 -> assignment 0b10) then (1,1).
  const std::vector<std::uint64_t> seq = {0b10, 0b11};
  TestbenchOptions opt;
  if (argc > 1) opt.period = std::stod(argv[1]);
  const SablRunResult run = run_sabl_sequence(net, vars, tech, sizing, seq,
                                              opt);
  const auto& w = run.waves;

  std::printf("time_ns,clk,out,outb,x,y,z,w_internal,i_vdd_uA\n");
  const double t0 = run.cycle_start.front();
  for (std::size_t k = 0; k < w.time.size(); ++k) {
    if (w.time[k] < t0) continue;  // skip warm-up cycles
    std::printf("%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.2f\n",
                (w.time[k] - t0) * 1e9, w.v("clk")[k], w.v("out")[k],
                w.v("outb")[k], w.v("x")[k], w.v("y")[k], w.v("z")[k],
                w.v("n_W1")[k], -w.i("vdd")[k] * 1e6);
  }
  std::fprintf(stderr,
               "cycle energies: (0,1) -> %.4g pJ, (1,1) -> %.4g pJ\n",
               run.cycles[0].energy * 1e12, run.cycles[1].energy * 1e12);
  return 0;
}
