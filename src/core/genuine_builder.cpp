#include "core/genuine_builder.hpp"

#include "expr/transforms.hpp"
#include "util/error.hpp"

namespace sable {

void emit_series_parallel(DpdnNetwork& net, const ExprPtr& e, NodeId top,
                          NodeId bottom) {
  if (e->is_literal()) {
    net.add_switch(SignalLiteral{e->literal_var(), e->literal_positive()}, top,
                   bottom);
    return;
  }
  switch (e->kind()) {
    case ExprKind::kAnd: {
      // Series chain: operand order is top-to-bottom, matching the paper's
      // drawings where the first factor is nearest the output node.
      NodeId current = top;
      const auto& ops = e->operands();
      for (std::size_t i = 0; i < ops.size(); ++i) {
        const NodeId next =
            (i + 1 == ops.size()) ? bottom : net.add_internal_node();
        emit_series_parallel(net, ops[i], current, next);
        current = next;
      }
      return;
    }
    case ExprKind::kOr: {
      for (const auto& op : e->operands()) {
        emit_series_parallel(net, op, top, bottom);
      }
      return;
    }
    default:
      throw InvalidArgument(
          "emit_series_parallel requires a non-constant NNF expression");
  }
}

DpdnNetwork build_genuine_dpdn(const ExprPtr& f, std::size_t num_vars) {
  SABLE_REQUIRE(!f->is_const(),
                "cannot build a DPDN for a constant function");
  DpdnNetwork net(num_vars);
  emit_series_parallel(net, to_nnf(f), DpdnNetwork::kNodeX,
                       DpdnNetwork::kNodeZ);
  emit_series_parallel(net, complement_nnf(f), DpdnNetwork::kNodeY,
                       DpdnNetwork::kNodeZ);
  return net;
}

}  // namespace sable
