// Structural transforms on expressions: negation-normal form, complement,
// dual, cofactors. These implement "step 0" and "step 2" of the paper's
// design procedure (§4.1): deriving the complementary output f' and the dual
// expression of a branch.
#pragma once

#include "expr/expression.hpp"

namespace sable {

/// Negation-normal form: complements pushed onto variables via De Morgan.
ExprPtr to_nnf(const ExprPtr& e);

/// NNF of the complement f'. Equivalent to to_nnf(negate(e)).
ExprPtr complement_nnf(const ExprPtr& e);

/// Dual expression: AND and OR swapped, literals unchanged.
/// dual(f)(x) == !f(!x); the paper uses duality between the series (AND)
/// and parallel (OR) halves of a differential network.
ExprPtr dual_nnf(const ExprPtr& e);

/// Shannon cofactor: e with variable `v` fixed to `value`, constant-folded.
ExprPtr cofactor(const ExprPtr& e, VarId v, bool value);

/// Structural equality (same tree shape; no semantic canonicalization).
bool structurally_equal(const ExprPtr& a, const ExprPtr& b);

}  // namespace sable
