// Lane-width equivalence suite: the batch kernels are generic over the
// lane word (64-bit, portable 128-bit pair, AVX2/AVX-512 vectors when
// compiled in), and the contract is that the word width is a pure
// throughput knob — campaigns generate BIT-IDENTICAL traces and attack
// statistics at every supported width, including ragged tail batches and
// the static-CMOS logical 64-lane history. Also covers the central
// lane_mask() helper (including its abort on out-of-range counts) and the
// engine's persistent cross-campaign worker pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "crypto/round_target.hpp"
#include "crypto/target.hpp"
#include "dpa/attack.hpp"
#include "dpa/mtd.hpp"
#include "engine/trace_engine.hpp"
#include "power/trace.hpp"
#include "util/cpu_dispatch.hpp"
#include "util/lane_word.hpp"
#include "util/rng.hpp"

namespace sable {
namespace {

const Technology kTech = Technology::generic_180nm();

std::vector<LogicStyle> all_styles() {
  return {LogicStyle::kStaticCmos,         LogicStyle::kSablGenuine,
          LogicStyle::kSablFullyConnected, LogicStyle::kSablEnhanced,
          LogicStyle::kWddlBalanced,       LogicStyle::kWddlMismatched};
}

// ---- lane word primitives -------------------------------------------------

// Whether the running CPU can execute kernels of lane word W. The wide
// words always exist in a runtime-dispatched binary; executing their
// kernels needs the matching ISA, so wide-word tests skip on older CPUs
// (the CI runners have AVX2 but not AVX-512).
template <typename W>
bool cpu_can_run() {
  constexpr std::size_t kLanes = LaneTraits<W>::kLanes;
  if (kLanes <= 128) return true;
  if (kLanes == 256) return cpu_features().avx2;
  return cpu_features().avx512f;
}

template <typename W>
struct LaneWordTest : ::testing::Test {};

using LaneWordTypes = ::testing::Types<std::uint64_t, Word128
#if SABLE_HAVE_WORD256
                                       ,
                                       Word256
#endif
#if SABLE_HAVE_WORD512
                                       ,
                                       Word512
#endif
                                       >;
TYPED_TEST_SUITE(LaneWordTest, LaneWordTypes);

// This TU is compiled for the base architecture, so it may only touch wide
// words through the memcpy-based chunk helpers and const-ref/scalar entry
// points — passing or returning a wide word by value across the
// portable/ISA boundary is the one thing the multi-ISA build must never do
// (see util/lane_word.hpp). The intrinsic bitwise operators are exercised
// end to end by the width-equivalence campaigns below: a broken AND/OR/XOR
// cannot produce traces bit-identical to the 64-lane reference.
TYPED_TEST(LaneWordTest, ChunkRoundTripAndLaneHelpers) {
  using W = TypeParam;
  using T = LaneTraits<W>;
  static_assert(T::kLanes == 64 * T::kChunks);
  if (!cpu_can_run<W>()) GTEST_SKIP() << "CPU lacks the ISA for this width";
  Rng rng(0x1A9E);
  for (int round = 0; round < 16; ++round) {
    std::uint64_t a[T::kChunks], out[T::kChunks];
    bool expect_any = false;
    for (std::size_t j = 0; j < T::kChunks; ++j) {
      a[j] = rng.next();
      expect_any |= a[j] != 0;
    }
    const W wa = lane_from_chunks<W>(a);
    lane_chunks(wa, out);
    for (std::size_t j = 0; j < T::kChunks; ++j) EXPECT_EQ(out[j], a[j]);
    EXPECT_EQ(lane_any(wa), expect_any);
    double energy[T::kLanes] = {};
    lane_fill_selected(wa, 1.0, energy);
    for (std::size_t lane = 0; lane < T::kLanes; ++lane) {
      EXPECT_EQ(energy[lane],
                static_cast<double>((a[lane / 64] >> (lane % 64)) & 1u))
          << "lane " << lane;
    }
  }
  const std::uint64_t zeros[T::kChunks] = {};
  EXPECT_FALSE(lane_any(lane_from_chunks<W>(zeros)));
  EXPECT_TRUE(lane_any(lane_mask<W>(1)));
  EXPECT_TRUE(lane_any(lane_mask<W>(T::kLanes)));
}

TYPED_TEST(LaneWordTest, LaneMaskSetsExactlyTheFirstCountLanes) {
  using W = TypeParam;
  using T = LaneTraits<W>;
  for (std::size_t count : {std::size_t{1}, std::size_t{2}, std::size_t{9},
                            std::size_t{63}, std::size_t{64},
                            std::min<std::size_t>(T::kLanes, 65),
                            std::min<std::size_t>(T::kLanes, 129),
                            T::kLanes - 1, T::kLanes}) {
    std::uint64_t chunks[T::kChunks];
    lane_chunks(lane_mask<W>(count), chunks);
    std::size_t total = 0;
    for (std::size_t j = 0; j < T::kChunks; ++j) {
      total += static_cast<std::size_t>(std::popcount(chunks[j]));
      // Set lanes must be the prefix: chunk j is all-ones below the count
      // boundary, a low-bits mask at it, zero above.
      const std::size_t low = 64 * j;
      const std::uint64_t expected =
          count <= low ? 0
          : count >= low + 64 ? ~std::uint64_t{0}
                              : (std::uint64_t{1} << (count - low)) - 1;
      EXPECT_EQ(chunks[j], expected) << "count " << count << " chunk " << j;
    }
    EXPECT_EQ(total, count);
  }
}

TYPED_TEST(LaneWordTest, PackLaneWordsTransposesEveryLane) {
  using W = TypeParam;
  using T = LaneTraits<W>;
  if (!cpu_can_run<W>()) GTEST_SKIP() << "CPU lacks the ISA for this width";
  constexpr std::size_t kVars = 5;
  Rng rng(0x9ACC);
  for (std::size_t count : {T::kLanes, T::kLanes - 7, std::size_t{1}}) {
    std::vector<std::uint64_t> assignments(count);
    for (auto& a : assignments) a = rng.below(std::uint64_t{1} << kVars);
    std::vector<W> words(kVars);
    pack_lane_words(assignments.data(), count, words);
    for (std::size_t v = 0; v < kVars; ++v) {
      std::uint64_t chunks[T::kChunks];
      lane_chunks(words[v], chunks);
      for (std::size_t lane = 0; lane < T::kLanes; ++lane) {
        const std::uint64_t bit = (chunks[lane / 64] >> (lane % 64)) & 1u;
        const std::uint64_t expected =
            lane < count ? (assignments[lane] >> v) & 1u : 0u;
        EXPECT_EQ(bit, expected) << "var " << v << " lane " << lane;
      }
    }
  }
}

// lane_mask is the single source of tail-batch masks; a count outside
// [1, kLanes] means an upstream kernel mis-sliced a batch, which must
// abort rather than silently simulate phantom traces.
TEST(LaneMaskDeathTest, AbortsOnOutOfRangeCounts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(lane_mask<std::uint64_t>(0), "lane_mask");
  EXPECT_DEATH(lane_mask<std::uint64_t>(65), "lane_mask");
  EXPECT_DEATH(lane_mask<Word128>(129), "lane_mask");
}

// ---- target-level width equivalence ---------------------------------------

// Runs `count` traces through a width-W variant of `base` and returns the
// samples. Noise exercised through a deterministic Rng so widths must also
// consume the stream identically.
template <typename W>
std::vector<double> trace_with_width(const RoundTarget& base,
                                     const std::vector<std::uint8_t>& pts,
                                     std::size_t count,
                                     const std::vector<std::uint8_t>& key) {
  RoundTargetT<W> target = base.with_lane_width<W>();
  Rng noise(0xD1CE);
  std::vector<double> out(count);
  target.trace_batch(pts.data(), count, key.data(), 1e-16, noise, out.data());
  return out;
}

TEST(LaneWidthTest, TraceBatchBitIdenticalAcrossWidthsAndRaggedTails) {
  // 777 leaves a partial tail batch at every width (777 = 12*64 + 9),
  // and N = 1 vs N = 3 covers both the single-S-box fast path and the
  // general multi-instance path.
  const std::size_t count = 777;
  for (LogicStyle style : all_styles()) {
    for (std::size_t n : {std::size_t{1}, std::size_t{3}}) {
      const RoundSpec round = present_round(n, style);
      RoundTarget base(round, kTech);
      std::vector<std::uint8_t> pts(count * round.state_bytes());
      Rng pt_rng(0x7A11);
      round.fill_random_states(pt_rng, count, pts.data());
      std::vector<std::uint8_t> key(round.state_bytes(), 0x6B);

      const std::vector<double> reference =
          trace_with_width<std::uint64_t>(base, pts, count, key);
      const std::vector<double> w128 =
          trace_with_width<Word128>(base, pts, count, key);
      for (std::size_t t = 0; t < count; ++t) {
        ASSERT_EQ(w128[t], reference[t])
            << to_string(style) << " n " << n << " trace " << t << " (128)";
      }
#if SABLE_HAVE_WORD256
      if (cpu_can_run<Word256>()) {
        const std::vector<double> w256 =
            trace_with_width<Word256>(base, pts, count, key);
        for (std::size_t t = 0; t < count; ++t) {
          ASSERT_EQ(w256[t], reference[t])
              << to_string(style) << " n " << n << " trace " << t << " (256)";
        }
      }
#endif
#if SABLE_HAVE_WORD512
      if (cpu_can_run<Word512>()) {
        const std::vector<double> w512 =
            trace_with_width<Word512>(base, pts, count, key);
        for (std::size_t t = 0; t < count; ++t) {
          ASSERT_EQ(w512[t], reference[t])
              << to_string(style) << " n " << n << " trace " << t << " (512)";
        }
      }
#endif
    }
  }
}

// ---- engine-level width equivalence ---------------------------------------

CampaignOptions sharded_options() {
  CampaignOptions options;
  options.num_traces = 1500;
  options.key = {0xB};
  options.noise_sigma = 2e-16;
  options.seed = 0x5EED;
  options.shard_size = 448;  // several shards, one partial tail
  return options;
}

TEST(LaneWidthTest, RunCampaignBitIdenticalAcrossLaneWidths) {
  for (LogicStyle style : all_styles()) {
    TraceEngine engine(present_spec(), style, kTech);
    CampaignOptions options = sharded_options();
    options.lane_width = 64;
    const TraceSet reference = engine.run(options);
    for (std::size_t width : runtime_lane_widths()) {
      options.lane_width = width;
      const TraceSet traces = engine.run(options);
      ASSERT_EQ(traces.size(), reference.size());
      for (std::size_t t = 0; t < reference.size(); ++t) {
        ASSERT_EQ(traces.plaintexts[t], reference.plaintexts[t])
            << to_string(style) << " width " << width << " trace " << t;
        ASSERT_EQ(traces.samples[t], reference.samples[t])
            << to_string(style) << " width " << width << " trace " << t;
      }
    }
  }
}

TEST(LaneWidthTest, AttackCampaignsBitIdenticalAcrossLaneWidths) {
  const AttackSelector cpa_sel{.model = PowerModel::kHammingWeight};
  for (LogicStyle style :
       {LogicStyle::kStaticCmos, LogicStyle::kSablEnhanced,
        LogicStyle::kWddlMismatched}) {
    TraceEngine engine(present_spec(), style, kTech);
    CampaignOptions options = sharded_options();
    options.lane_width = 64;
    const AttackResult cpa_ref = engine.cpa_campaign(options, cpa_sel);
    const AttackResult dom_ref =
        engine.dom_campaign(options, AttackSelector{.bit = 0});
    const auto checkpoints = default_checkpoints(options.num_traces);
    const MtdResult mtd_ref =
        engine.mtd_campaign(options, cpa_sel, checkpoints);
    for (std::size_t width : runtime_lane_widths()) {
      options.lane_width = width;
      const AttackResult cpa = engine.cpa_campaign(options, cpa_sel);
      ASSERT_EQ(cpa.score.size(), cpa_ref.score.size());
      for (std::size_t g = 0; g < cpa_ref.score.size(); ++g) {
        // EXPECT_EQ on doubles is exact: bit-identical, not just <= 1e-12.
        EXPECT_EQ(cpa.score[g], cpa_ref.score[g])
            << to_string(style) << " width " << width << " guess " << g;
      }
      EXPECT_EQ(cpa.best_guess, cpa_ref.best_guess);
      EXPECT_EQ(cpa.margin, cpa_ref.margin);
      const AttackResult dom =
          engine.dom_campaign(options, AttackSelector{.bit = 0});
      for (std::size_t g = 0; g < dom_ref.score.size(); ++g) {
        EXPECT_EQ(dom.score[g], dom_ref.score[g])
            << to_string(style) << " width " << width << " guess " << g;
      }
      const MtdResult mtd = engine.mtd_campaign(options, cpa_sel, checkpoints);
      EXPECT_EQ(mtd.disclosed, mtd_ref.disclosed);
      EXPECT_EQ(mtd.mtd, mtd_ref.mtd);
      ASSERT_EQ(mtd.rank_history.size(), mtd_ref.rank_history.size());
      for (std::size_t i = 0; i < mtd_ref.rank_history.size(); ++i) {
        EXPECT_EQ(mtd.rank_history[i], mtd_ref.rank_history[i])
            << to_string(style) << " width " << width << " checkpoint " << i;
      }
    }
  }
}

TEST(LaneWidthTest, MultiCpaCampaignBitIdenticalAcrossLaneWidthsAllStyles) {
  // Time-resolved campaigns now cover the baseline and WDDL styles too
  // (cycle_sampled on every batch sim), at every lane width.
  const AttackSelector selector{.model = PowerModel::kHammingWeight};
  for (LogicStyle style :
       {LogicStyle::kSablGenuine, LogicStyle::kStaticCmos,
        LogicStyle::kWddlMismatched}) {
    TraceEngine engine(present_spec(), style, kTech);
    ASSERT_GT(engine.target().num_levels(), 0u) << to_string(style);
    CampaignOptions options = sharded_options();
    options.lane_width = 64;
    const MultiAttackResult reference =
        engine.multi_cpa_campaign(options, selector);
    for (std::size_t width : runtime_lane_widths()) {
      options.lane_width = width;
      const MultiAttackResult result =
          engine.multi_cpa_campaign(options, selector);
      ASSERT_EQ(result.combined.score.size(),
                reference.combined.score.size());
      for (std::size_t g = 0; g < reference.combined.score.size(); ++g) {
        EXPECT_EQ(result.combined.score[g], reference.combined.score[g])
            << to_string(style) << " width " << width << " guess " << g;
      }
      EXPECT_EQ(result.best_sample, reference.best_sample);
      EXPECT_EQ(result.combined.best_guess, reference.combined.best_guess);
    }
  }
}

TEST(LaneWidthTest, SingleShardSmallerThanWideWordsIsHandled) {
  // 65 traces in one shard: every width wider than 64 sees a first word
  // with a ragged, sub-word tail — the lane_mask path end to end.
  TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
  CampaignOptions options;
  options.num_traces = 65;
  options.key = {0x7};
  options.seed = 0x1AB5;
  options.lane_width = 64;
  const TraceSet reference = engine.run(options);
  for (std::size_t width : runtime_lane_widths()) {
    options.lane_width = width;
    const TraceSet traces = engine.run(options);
    ASSERT_EQ(traces.size(), reference.size());
    for (std::size_t t = 0; t < reference.size(); ++t) {
      ASSERT_EQ(traces.samples[t], reference.samples[t])
          << "width " << width << " trace " << t;
    }
  }
}

TEST(LaneWidthTest, UnsupportedLaneWidthThrows) {
  TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
  CampaignOptions options;
  options.num_traces = 128;
  options.key = {0x0};
  options.lane_width = 96;
  EXPECT_THROW(engine.run(options), InvalidArgument);
  options.lane_width = 1024;
  EXPECT_THROW(engine.run(options), InvalidArgument);
  // A width this binary carries but the CPU (or the active dispatch tier)
  // does not offer must throw, not crash: pin the tier to portable and ask
  // for an AVX2 word.
#if SABLE_HAVE_WORD256
  {
    ScopedDispatchTierCap cap(DispatchTier::kPortable);
    options.lane_width = 256;
    EXPECT_THROW(engine.run(options), InvalidArgument);
    EXPECT_EQ(campaign_lane_width(CampaignOptions{}), 128u);
  }
#endif
  for (std::size_t width : {std::size_t{256}, std::size_t{512}}) {
    const auto widths = runtime_lane_widths();
    if (std::find(widths.begin(), widths.end(), width) == widths.end()) {
      options.lane_width = width;
      EXPECT_THROW(engine.run(options), InvalidArgument);
    }
  }
  // Default (lane_width = 0) resolves to the widest the machine offers.
  EXPECT_EQ(campaign_lane_width(CampaignOptions{}), max_runtime_lane_width());
}

// ---- persistent worker pool -----------------------------------------------

// Workers are cloned once per engine and reused across campaigns; a stale
// worker (CMOS history from an earlier campaign) must never leak into the
// next campaign's traces.
TEST(LaneWidthTest, PersistentWorkerPoolReusesCleanWorkers) {
  TraceEngine reused(present_spec(), LogicStyle::kStaticCmos, kTech);
  CampaignOptions first;
  first.num_traces = 500;
  first.key = {0x3};
  first.seed = 0xAAAA;
  reused.run(first);  // leaves workers (with history) in the pool

  CampaignOptions second = sharded_options();
  const TraceSet pooled = reused.run(second);
  TraceEngine fresh(present_spec(), LogicStyle::kStaticCmos, kTech);
  const TraceSet reference = fresh.run(second);
  ASSERT_EQ(pooled.size(), reference.size());
  for (std::size_t t = 0; t < reference.size(); ++t) {
    ASSERT_EQ(pooled.samples[t], reference.samples[t]) << t;
  }

  // Attack campaigns after trace campaigns share the same pool.
  const AttackSelector selector{.model = PowerModel::kHammingWeight};
  const AttackResult pooled_cpa = reused.cpa_campaign(second, selector);
  const AttackResult fresh_cpa = fresh.cpa_campaign(second, selector);
  ASSERT_EQ(pooled_cpa.score.size(), fresh_cpa.score.size());
  for (std::size_t g = 0; g < fresh_cpa.score.size(); ++g) {
    EXPECT_EQ(pooled_cpa.score[g], fresh_cpa.score[g]) << g;
  }
}

// ---- sampled campaigns across styles --------------------------------------

TEST(LaneWidthTest, SampledRowsSumToStreamedSamplesEveryStyle) {
  for (LogicStyle style : all_styles()) {
    TraceEngine engine(present_spec(), style, kTech);
    const std::size_t width = engine.target().num_levels();
    ASSERT_GT(width, 0u) << to_string(style);
    CampaignOptions options;
    options.num_traces = 320;
    options.key = {0x9};
    options.seed = 0xE4E4;
    options.shard_size = 128;
    std::vector<double> row_sums;
    engine.stream_sampled(options, [&](const std::uint8_t*,
                                       const double* rows, std::size_t n) {
      for (std::size_t t = 0; t < n; ++t) {
        double sum = 0.0;
        for (std::size_t l = 0; l < width; ++l) sum += rows[t * width + l];
        row_sums.push_back(sum);
      }
    });
    std::vector<double> samples;
    engine.stream(options, [&](const std::uint8_t*, const double* s,
                               std::size_t n) {
      samples.insert(samples.end(), s, s + n);
    });
    ASSERT_EQ(row_sums.size(), samples.size());
    for (std::size_t t = 0; t < samples.size(); ++t) {
      EXPECT_NEAR(row_sums[t], samples[t],
                  1e-12 * std::fabs(samples[t]) + 1e-30)
          << to_string(style) << " trace " << t;
    }
  }
}

}  // namespace
}  // namespace sable
