#include "power/trace.hpp"

#include "util/error.hpp"

namespace sable {

void TraceSet::add(std::uint8_t pt, double sample) {
  SABLE_REQUIRE(pt_width == 1,
                "byte-wide add() requires a 1-byte plaintext layout");
  plaintexts.push_back(pt);
  samples.push_back(sample);
}

void TraceSet::add_batch(const std::uint8_t* pts, const double* values,
                         std::size_t count) {
  plaintexts.insert(plaintexts.end(), pts, pts + count * pt_width);
  samples.insert(samples.end(), values, values + count);
}

void MultiTraceSet::reserve(std::size_t capacity, std::size_t sample_width) {
  plaintexts.reserve(capacity);
  samples.reserve(capacity * sample_width);
}

void MultiTraceSet::add(std::uint8_t pt, const double* row,
                        std::size_t row_width) {
  if (width == 0) width = row_width;
  SABLE_REQUIRE(row_width == width,
                "all traces must have the same sample count");
  plaintexts.push_back(pt);
  samples.insert(samples.end(), row, row + width);
}

TraceSet MultiTraceSet::column(std::size_t sample) const {
  SABLE_REQUIRE(sample < width, "sample index out of range");
  TraceSet out;
  out.plaintexts = plaintexts;
  out.samples.reserve(size());
  for (std::size_t t = 0; t < size(); ++t) {
    out.samples.push_back(at(t, sample));
  }
  return out;
}

}  // namespace sable
