// Campaign persistence: accumulator serialization round trips, recorded
// corpora, replay and multi-process partial-state merges — and the
// hostile-input contract: every malformed file throws a typed
// path-tagged error, never UB.
//
// The bit-identity claims under test are the subsystem's reason to
// exist: a recorded campaign replayed into any distinguisher, and a
// campaign split over disjoint shard ranges and merged from partial
// state files, must reproduce the single-process in-memory run bit for
// bit. Shard counts here are non-powers-of-two on purpose — that is the
// regime where storing merged prefixes instead of raw shard states
// would silently change the reduction tree's shape.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "crypto/round_target.hpp"
#include "crypto/sboxes.hpp"
#include "dpa/attack.hpp"
#include "dpa/distinguisher.hpp"
#include "dpa/mtd.hpp"
#include "dpa/second_order.hpp"
#include "dpa/streaming.hpp"
#include "engine/trace_engine.hpp"
#include "io/campaign_state.hpp"
#include "io/corpus.hpp"
#include "io/manifest.hpp"
#include "io/replay.hpp"
#include "io/serial.hpp"
#include "util/rng.hpp"

namespace sable {
namespace {

const Technology kTech = Technology::generic_180nm();

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "campaign_io_" + name;
}

// 3000 traces over 448-trace shards = 7 shards with a partial tail: a
// non-power-of-2 count, one ragged shard — the reduction-shape stress
// layout the determinism tests already pin.
CampaignOptions small_options() {
  CampaignOptions options;
  options.num_traces = 3000;
  options.key = {0xB};
  options.noise_sigma = 2e-16;
  options.seed = 0x5EED;
  options.shard_size = 448;
  return options;
}

void expect_same_scores(const std::vector<double>& a,
                        const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t g = 0; g < a.size(); ++g) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[g]),
              std::bit_cast<std::uint64_t>(b[g]))
        << "guess " << g;
  }
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// Deterministic sub-plaintext / sample streams for accumulator-level
// round trips (no engine involved).
template <typename Feed>
void feed_traces(std::size_t count, const Feed& feed) {
  Rng rng(0xF00D);
  for (std::size_t i = 0; i < count; ++i) {
    const auto pt = static_cast<std::uint8_t>(rng.below(16));
    feed(pt, rng);
  }
}

// ---- accumulator serialization --------------------------------------------

TEST(CampaignIoTest, StreamingCpaRoundTripsBitExactly) {
  StreamingCpa original(present_spec(), PowerModel::kHammingWeight);
  feed_traces(257, [&](std::uint8_t pt, Rng& rng) {
    original.add(pt, 1e-13 * rng.uniform());
  });
  ByteWriter writer;
  original.save(writer);

  StreamingCpa loaded(present_spec(), PowerModel::kHammingWeight);
  ByteReader reader(writer.buffer().data(), writer.buffer().size(), "mem");
  loaded.load(reader);
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_EQ(loaded.count(), original.count());
  expect_same_scores(loaded.result().score, original.result().score);

  // Re-serialization is byte-identical — the round trip loses nothing.
  ByteWriter again;
  loaded.save(again);
  EXPECT_EQ(again.buffer(), writer.buffer());
}

TEST(CampaignIoTest, StreamingDomRoundTripsBitExactly) {
  StreamingDom original(present_spec(), 2);
  feed_traces(300, [&](std::uint8_t pt, Rng& rng) {
    original.add(pt, 1e-13 * rng.uniform());
  });
  ByteWriter writer;
  original.save(writer);
  StreamingDom loaded(present_spec(), 2);
  ByteReader reader(writer.buffer().data(), writer.buffer().size(), "mem");
  loaded.load(reader);
  expect_same_scores(loaded.result().score, original.result().score);
  ByteWriter again;
  loaded.save(again);
  EXPECT_EQ(again.buffer(), writer.buffer());
}

TEST(CampaignIoTest, StreamingMultiCpaRoundTripsBitExactly) {
  constexpr std::size_t kWidth = 3;
  StreamingMultiCpa original(present_spec(), PowerModel::kHammingWeight,
                             kWidth);
  feed_traces(211, [&](std::uint8_t pt, Rng& rng) {
    double row[kWidth];
    for (double& x : row) x = 1e-13 * rng.uniform();
    original.add(pt, row);
  });
  ByteWriter writer;
  original.save(writer);
  StreamingMultiCpa loaded(present_spec(), PowerModel::kHammingWeight,
                           kWidth);
  ByteReader reader(writer.buffer().data(), writer.buffer().size(), "mem");
  loaded.load(reader);
  expect_same_scores(loaded.result().combined.score,
                     original.result().combined.score);
  ByteWriter again;
  loaded.save(again);
  EXPECT_EQ(again.buffer(), writer.buffer());
}

TEST(CampaignIoTest, SecondOrderCpaRoundTripsBitExactly) {
  constexpr std::size_t kWidth = 4;
  StreamingSecondOrderCpa original(present_spec(),
                                   PowerModel::kHammingWeight);
  std::vector<std::uint8_t> pts(128);
  std::vector<double> rows(pts.size() * kWidth);
  Rng rng(0xF00D);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    pts[i] = static_cast<std::uint8_t>(rng.below(16));
    for (std::size_t w = 0; w < kWidth; ++w) {
      rows[i * kWidth + w] = 1e-13 * rng.uniform();
    }
  }
  original.add_block(pts.data(), rows.data(), pts.size(), kWidth);
  ByteWriter writer;
  original.save(writer);
  StreamingSecondOrderCpa loaded(present_spec(),
                                 PowerModel::kHammingWeight);
  ByteReader reader(writer.buffer().data(), writer.buffer().size(), "mem");
  loaded.load(reader);
  expect_same_scores(loaded.result().combined.score,
                     original.result().combined.score);
  ByteWriter again;
  loaded.save(again);
  EXPECT_EQ(again.buffer(), writer.buffer());
}

TEST(CampaignIoTest, NeverFedSecondOrderRoundTripsAsWidthZero) {
  StreamingSecondOrderCpa original(present_spec(),
                                   PowerModel::kHammingWeight);
  ByteWriter writer;
  original.save(writer);
  StreamingSecondOrderCpa loaded(present_spec(),
                                 PowerModel::kHammingWeight);
  ByteReader reader(writer.buffer().data(), writer.buffer().size(), "mem");
  loaded.load(reader);
  EXPECT_EQ(loaded.count(), 0u);
}

TEST(CampaignIoTest, ShardedMtdRoundTripsBitExactly) {
  const StreamingCpa prototype(present_spec(), PowerModel::kHammingWeight);
  ShardedMtd original(0xB);
  StreamingCpa shard(prototype);
  feed_traces(200, [&](std::uint8_t pt, Rng& rng) {
    shard.add(pt, 1e-13 * rng.uniform());
  });
  original.checkpoint(64, shard);  // pre-append in-shard checkpoint
  original.append(shard);
  ByteWriter writer;
  original.save(writer);
  ShardedMtd loaded(0xB);
  ByteReader reader(writer.buffer().data(), writer.buffer().size(), "mem");
  loaded.load(reader, prototype);
  EXPECT_EQ(loaded.count(), original.count());
  EXPECT_EQ(loaded.result().rank_history, original.result().rank_history);
  ByteWriter again;
  loaded.save(again);
  EXPECT_EQ(again.buffer(), writer.buffer());
}

TEST(CampaignIoTest, AccumulatorLoadRejectsWrongTypeAndConfig) {
  StreamingCpa cpa(present_spec(), PowerModel::kHammingWeight);
  ByteWriter writer;
  cpa.save(writer);
  // Wrong accumulator type behind the tag.
  {
    StreamingDom dom(present_spec(), 0);
    ByteReader reader(writer.buffer().data(), writer.buffer().size(), "mem");
    EXPECT_THROW(dom.load(reader), InvalidArgument);
  }
  // Same type, different configuration (model changes the prediction
  // table the moments were accumulated against).
  {
    StreamingCpa other(present_spec(), PowerModel::kSboxOutputBit, 1);
    ByteReader reader(writer.buffer().data(), writer.buffer().size(), "mem");
    EXPECT_THROW(other.load(reader), InvalidArgument);
  }
}

TEST(CampaignIoTest, RoundSpecHashSeparatesFunctionallyDifferentRounds) {
  const RoundSpec a = present_round(2, LogicStyle::kSablGenuine);
  const RoundSpec b = present_round(2, LogicStyle::kSablGenuine);
  EXPECT_EQ(round_spec_hash(a), round_spec_hash(b));
  EXPECT_NE(round_spec_hash(a),
            round_spec_hash(present_round(2, LogicStyle::kStaticCmos)));
  EXPECT_NE(round_spec_hash(a),
            round_spec_hash(present_round(3, LogicStyle::kSablGenuine)));
  RoundSpec tweaked = a;
  std::swap(tweaked.sboxes[0].table[0], tweaked.sboxes[0].table[1]);
  EXPECT_NE(round_spec_hash(a), round_spec_hash(tweaked));
}

// ---- recorded corpora ------------------------------------------------------

TEST(CampaignIoTest, ScalarCorpusReplaysBitIdentically) {
  TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
  const CampaignOptions options = small_options();
  const std::size_t subkey = options.key[0];
  const AttackSelector selector{.model = PowerModel::kHammingWeight};

  // Reference: the plain in-memory campaign.
  CpaDistinguisher ref_cpa(engine.spec(), selector);
  DomDistinguisher ref_dom(
      engine.spec(), AttackSelector{.model = PowerModel::kHammingWeight,
                                    .bit = 1});
  MtdDistinguisher ref_mtd(engine.spec(), selector, subkey,
                           default_checkpoints(options.num_traces),
                           options.num_traces);
  Distinguisher* const ref_list[] = {&ref_cpa, &ref_dom, &ref_mtd};
  engine.run_distinguishers(options, ref_list);

  const std::string path = temp_path("scalar.corpus");
  engine.record(options, TraceDataKind::kScalar, path);
  const CorpusReader corpus(path);
  EXPECT_EQ(corpus.num_shards(), 7u);
  EXPECT_EQ(corpus.manifest().campaign, engine.campaign_manifest(options));
  EXPECT_EQ(corpus.shard_count(6), 3000u - 6 * 448u);
  EXPECT_THROW(corpus.shard_count(7), ShardIndexError);

  CpaDistinguisher cpa(engine.spec(), selector);
  DomDistinguisher dom(
      engine.spec(), AttackSelector{.model = PowerModel::kHammingWeight,
                                    .bit = 1});
  MtdDistinguisher mtd(engine.spec(), selector, subkey,
                       default_checkpoints(options.num_traces),
                       options.num_traces);
  Distinguisher* const list[] = {&cpa, &dom, &mtd};
  EXPECT_TRUE(engine.replay(corpus, list));
  expect_same_scores(cpa.result().score, ref_cpa.result().score);
  expect_same_scores(dom.result().score, ref_dom.result().score);
  EXPECT_EQ(mtd.result().rank_history, ref_mtd.result().rank_history);

  // The free replay_distinguishers entry point (no engine) agrees too.
  CpaDistinguisher cpa2(engine.spec(), selector);
  Distinguisher* const solo[] = {&cpa2};
  EXPECT_TRUE(replay_distinguishers(corpus, engine.round(), solo));
  expect_same_scores(cpa2.result().score, ref_cpa.result().score);
}

TEST(CampaignIoTest, SampledCorpusReplaysBitIdentically) {
  TraceEngine engine(present_spec(), LogicStyle::kSablGenuine, kTech);
  CampaignOptions options = small_options();
  options.num_traces = 1500;  // 4 shards: keep the sampled corpus small
  const AttackSelector selector{.model = PowerModel::kHammingWeight};
  const std::size_t levels = engine.target().num_levels();
  ASSERT_GE(levels, 2u);

  MultiCpaDistinguisher ref_multi(engine.spec(), selector, levels);
  SecondOrderCpaDistinguisher ref_so(engine.spec(), selector);
  Distinguisher* const ref_list[] = {&ref_multi, &ref_so};
  engine.run_distinguishers(options, ref_list);

  const std::string path = temp_path("sampled.corpus");
  engine.record(options, TraceDataKind::kSampled, path);
  const CorpusReader corpus(path);
  EXPECT_EQ(corpus.manifest().kind, kCorpusKindSampled);
  EXPECT_EQ(corpus.manifest().sample_width, levels);

  MultiCpaDistinguisher multi(engine.spec(), selector, levels);
  SecondOrderCpaDistinguisher so(engine.spec(), selector);
  Distinguisher* const list[] = {&multi, &so};
  EXPECT_TRUE(engine.replay(corpus, list));
  expect_same_scores(multi.result().combined.score,
                     ref_multi.result().combined.score);
  expect_same_scores(so.result().combined.score,
                     ref_so.result().combined.score);
}

TEST(CampaignIoTest, ReplayRejectsKindAndSpecMismatch) {
  TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
  const CampaignOptions options = small_options();
  const std::string path = temp_path("kind.corpus");
  engine.record(options, TraceDataKind::kScalar, path);
  const CorpusReader corpus(path);

  // A scalar corpus cannot feed a time-resolved distinguisher.
  MultiCpaDistinguisher multi(engine.spec(),
                              AttackSelector{.model =
                                                 PowerModel::kHammingWeight},
                              2);
  Distinguisher* const sampled_list[] = {&multi};
  EXPECT_THROW(engine.replay(corpus, sampled_list), InvalidArgument);

  // A different round spec (same S-box, different logic style) is a
  // different campaign: the spec hash mismatch is typed and path-tagged.
  TraceEngine other(present_spec(), LogicStyle::kSablGenuine, kTech);
  CpaDistinguisher cpa(other.spec(),
                       AttackSelector{.model = PowerModel::kHammingWeight});
  Distinguisher* const list[] = {&cpa};
  EXPECT_THROW(other.replay(corpus, list), ManifestMismatchError);
}

// ---- checkpointing and multi-process merge --------------------------------

TEST(CampaignIoTest, SplitShardRangeMergeIsBitIdenticalToSingleRun) {
  const CampaignOptions options = small_options();  // 7 shards
  const std::size_t subkey = options.key[0];
  const AttackSelector selector{.model = PowerModel::kHammingWeight};
  // Guaranteed copy elision: members are direct-initialized from the
  // prvalues, so the (non-movable) distinguishers never relocate.
  struct AttackSet {
    CpaDistinguisher cpa;
    DomDistinguisher dom;
    MtdDistinguisher mtd;
  };
  const auto make = [&](TraceEngine& engine) {
    return AttackSet{
        CpaDistinguisher(engine.spec(), selector),
        DomDistinguisher(engine.spec(),
                         AttackSelector{.model = PowerModel::kHammingWeight}),
        MtdDistinguisher(engine.spec(), selector, subkey,
                         default_checkpoints(options.num_traces),
                         options.num_traces)};
  };

  TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
  AttackSet ref = make(engine);
  Distinguisher* const ref_list[] = {&ref.cpa, &ref.dom, &ref.mtd};
  engine.run_distinguishers(options, ref_list);

  // Three "processes" over disjoint ranges (7 = 3 + 2 + 2 shards), each
  // persisting a partial state file.
  const std::vector<std::pair<std::size_t, std::size_t>> ranges = {
      {0, 3}, {3, 5}, {5, kAllShards}};
  std::vector<std::string> partials;
  for (std::size_t k = 0; k < ranges.size(); ++k) {
    TraceEngine worker(present_spec(), LogicStyle::kStaticCmos, kTech);
    AttackSet set = make(worker);
    Distinguisher* const list[] = {&set.cpa, &set.dom, &set.mtd};
    CampaignPersistence persist;
    persist.shard_begin = ranges[k].first;
    persist.shard_end = ranges[k].second;
    persist.checkpoint_path = temp_path("partial" + std::to_string(k));
    EXPECT_FALSE(worker.run_distinguishers(options, list, persist));
    partials.push_back(persist.checkpoint_path);
  }

  TraceEngine merger(present_spec(), LogicStyle::kStaticCmos, kTech);
  AttackSet merged = make(merger);
  Distinguisher* const list[] = {&merged.cpa, &merged.dom, &merged.mtd};
  merger.merge_partials(options, list, partials);
  expect_same_scores(merged.cpa.result().score, ref.cpa.result().score);
  expect_same_scores(merged.dom.result().score, ref.dom.result().score);
  EXPECT_EQ(merged.mtd.result().rank_history, ref.mtd.result().rank_history);

  // Overlapping partials name the colliding shard.
  TraceEngine overlap(present_spec(), LogicStyle::kStaticCmos, kTech);
  AttackSet set2 = make(overlap);
  Distinguisher* const list2[] = {&set2.cpa, &set2.dom, &set2.mtd};
  EXPECT_THROW(
      overlap.merge_partials(options, list2, {partials[0], partials[0]}),
      ShardIndexError);

  // A gap (missing range) cannot finalize.
  TraceEngine gappy(present_spec(), LogicStyle::kStaticCmos, kTech);
  AttackSet set3 = make(gappy);
  Distinguisher* const list3[] = {&set3.cpa, &set3.dom, &set3.mtd};
  EXPECT_THROW(
      gappy.merge_partials(options, list3, {partials[0], partials[2]}),
      InvalidArgument);
}

TEST(CampaignIoTest, PartialRangeWithoutCheckpointPathThrows) {
  TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
  const CampaignOptions options = small_options();
  CpaDistinguisher cpa(engine.spec(),
                       AttackSelector{.model = PowerModel::kHammingWeight});
  Distinguisher* const list[] = {&cpa};
  CampaignPersistence persist;
  persist.shard_end = 3;  // partial, but nowhere to persist the states
  EXPECT_THROW(engine.run_distinguishers(options, list, persist),
               InvalidArgument);
}

// ---- hostile inputs --------------------------------------------------------

class HostileInputTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
    options_ = small_options();
    corpus_path_ = temp_path("hostile.corpus");
    engine.record(options_, TraceDataKind::kScalar, corpus_path_);
    CpaDistinguisher cpa(engine.spec(),
                         AttackSelector{.model = PowerModel::kHammingWeight});
    Distinguisher* const list[] = {&cpa};
    CampaignPersistence persist;
    persist.checkpoint_path = state_path_ = temp_path("hostile.state");
    EXPECT_TRUE(engine.run_distinguishers(options_, list, persist));
  }

  // Loading the artifact at `path` must fail with a typed io error.
  void expect_corpus_error(const std::string& path) {
    EXPECT_THROW(CorpusReader reader(path), IoError) << path;
  }
  void expect_state_error(const std::string& path) {
    TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
    CpaDistinguisher cpa(engine.spec(),
                         AttackSelector{.model = PowerModel::kHammingWeight});
    Distinguisher* const list[] = {&cpa};
    EXPECT_THROW(engine.merge_partials(options_, list, {path}), Error)
        << path;
  }

  CampaignOptions options_;
  std::string corpus_path_;
  std::string state_path_;
};

TEST_F(HostileInputTest, WrongMagicAndVersionThrowTyped) {
  auto corpus = read_file(corpus_path_);
  auto bad = corpus;
  bad[0] ^= 0xFF;
  const std::string p1 = temp_path("bad_magic.corpus");
  write_bytes(p1, bad);
  EXPECT_THROW(CorpusReader r(p1), BadFileError);

  bad = corpus;
  bad[8] = 0x7F;  // version field
  const std::string p2 = temp_path("bad_version.corpus");
  write_bytes(p2, bad);
  EXPECT_THROW(CorpusReader r(p2), BadFileError);

  auto state = read_file(state_path_);
  state[1] ^= 0xFF;
  const std::string p3 = temp_path("bad_magic.state");
  write_bytes(p3, state);
  expect_state_error(p3);
}

TEST_F(HostileInputTest, ShardIndexOutOfBoundsThrows) {
  auto corpus = read_file(corpus_path_);
  // The shard index lives right after the fixed header; smash the first
  // entry's offset to point far past EOF.
  // magic + version + kind + manifest (6 u64 + f64 + 1 key byte) +
  // pt_stride + sample_width, padded to 8.
  const std::size_t header = 8 + 4 + 4 + (7 * 8 + 1) + 8 + 8;
  const std::size_t index = (header + 7) / 8 * 8;
  ASSERT_LT(index + 8, corpus.size());
  for (std::size_t b = 0; b < 8; ++b) corpus[index + b] = 0xFF;
  const std::string p = temp_path("bad_index.corpus");
  write_bytes(p, corpus);
  EXPECT_THROW(CorpusReader r(p), ShardIndexError);
}

TEST_F(HostileInputTest, ManifestMismatchNamesTheCampaign) {
  // The recorded artifacts belong to seed 0x5EED; a campaign with any
  // other seed must refuse them.
  TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
  CampaignOptions other = options_;
  other.seed = 0xD1FF;
  CpaDistinguisher cpa(engine.spec(),
                       AttackSelector{.model = PowerModel::kHammingWeight});
  Distinguisher* const list[] = {&cpa};
  EXPECT_THROW(engine.merge_partials(other, list, {state_path_}),
               ManifestMismatchError);

  const CorpusReader corpus(corpus_path_);
  CampaignPersistence resume;
  resume.resume_path = state_path_;
  // Resume path cross-checks the state's manifest against the corpus
  // campaign — same campaign here, so this succeeds...
  CpaDistinguisher cpa2(engine.spec(),
                        AttackSelector{.model = PowerModel::kHammingWeight});
  Distinguisher* const list2[] = {&cpa2};
  EXPECT_TRUE(engine.replay(corpus, list2, resume));
  // ...and the state written for ONE distinguisher refuses a different
  // distinguisher count.
  CpaDistinguisher a(engine.spec(),
                     AttackSelector{.model = PowerModel::kHammingWeight});
  DomDistinguisher b(engine.spec(),
                     AttackSelector{.model = PowerModel::kHammingWeight});
  Distinguisher* const two[] = {&a, &b};
  EXPECT_THROW(engine.merge_partials(options_, two, {state_path_}),
               BadFileError);
}

TEST_F(HostileInputTest, TruncationSweepAlwaysThrowsTyped) {
  const auto corpus = read_file(corpus_path_);
  const auto state = read_file(state_path_);
  // Every strict prefix must throw a typed error — never crash, never
  // succeed (both formats pin their full extent up front).
  for (std::size_t len = 0; len < corpus.size();
       len += 1 + corpus.size() / 97) {
    const std::string p = temp_path("trunc.corpus");
    write_bytes(p, {corpus.begin(), corpus.begin() +
                                        static_cast<std::ptrdiff_t>(len)});
    expect_corpus_error(p);
  }
  for (std::size_t len = 0; len < state.size();
       len += 1 + state.size() / 97) {
    const std::string p = temp_path("trunc.state");
    write_bytes(p, {state.begin(), state.begin() +
                                       static_cast<std::ptrdiff_t>(len)});
    expect_state_error(p);
  }
}

TEST_F(HostileInputTest, ByteFlipFuzzNeverEscapesTypedErrors) {
  const auto corpus = read_file(corpus_path_);
  const auto state = read_file(state_path_);
  Rng rng(0xFA22);
  for (int iter = 0; iter < 64; ++iter) {
    auto bad = corpus;
    bad[rng.below(bad.size())] ^= static_cast<std::uint8_t>(rng.below(255) +
                                                            1);
    const std::string p = temp_path("fuzz.corpus");
    write_bytes(p, bad);
    try {
      const CorpusReader reader(p);
      // A flip in trace data still loads — that is fine; touch every
      // accessor to prove the validated index stays in bounds.
      for (std::size_t s = 0; s < reader.num_shards(); ++s) {
        (void)reader.shard_plaintexts(s);
        (void)reader.shard_samples(s);
        (void)reader.shard_count(s);
      }
    } catch (const Error&) {
      // Typed rejection is the other acceptable outcome.
    }
  }
  TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
  for (int iter = 0; iter < 64; ++iter) {
    auto bad = state;
    bad[rng.below(bad.size())] ^= static_cast<std::uint8_t>(rng.below(255) +
                                                            1);
    const std::string p = temp_path("fuzz.state");
    write_bytes(p, bad);
    CpaDistinguisher cpa(engine.spec(),
                         AttackSelector{.model = PowerModel::kHammingWeight});
    Distinguisher* const list[] = {&cpa};
    try {
      engine.merge_partials(options_, list, {p});
    } catch (const Error&) {
    }
  }
}

}  // namespace
}  // namespace sable
