// Conduction analysis of a DPDN under complementary input assignments.
//
// During the evaluation phase the inputs are complementary: variable k is
// exactly one of (1, 0), and its complement literal is the opposite. An
// assignment is encoded as a bitmask over VarIds. These queries answer
// which nodes are shorted together through conducting switches — the basis
// of every verification in the paper: functionality (X–Z conducts iff f),
// full connectivity (§3), and the discharge sets behind Fig. 3/4.
#pragma once

#include <cstdint>
#include <vector>

#include "expr/truth_table.hpp"
#include "netlist/network.hpp"
#include "netlist/union_find.hpp"
#include "util/lane_word.hpp"

namespace sable {

/// Disjoint-set structure of nodes under one assignment.
UnionFind conduction_components(const DpdnNetwork& net,
                                std::uint64_t assignment);

/// True if `from` and `to` are connected through conducting switches.
bool conducts(const DpdnNetwork& net, std::uint64_t assignment, NodeId from,
              NodeId to);

/// Truth table of the conduction function between two nodes over all
/// 2^num_vars complementary assignments.
TruthTable conduction_function(const DpdnNetwork& net, NodeId from, NodeId to);

/// Per-node flag: connected to at least one external node (X, Y or Z) under
/// `assignment`. External nodes are trivially true.
std::vector<bool> connected_to_external(const DpdnNetwork& net,
                                        std::uint64_t assignment);

// ---- Bit-parallel (lane-word) conduction ----------------------------------
//
// A lane is one independent complementary assignment; lane L of
// `var_words[v]` holds the value of variable v under assignment L. All
// LaneTraits<W>::kLanes lanes are analyzed simultaneously with word-wide
// operations — the bit-parallel engine behind the batched trace
// simulators. W is any lane word from util/lane_word.hpp (instantiated for
// every compiled-in width; std::uint64_t is the historic 64-lane kernel).

/// Per-device conduction mask: lane L of `out[d]` is set iff device d
/// conducts in lane L. `out` is resized to the device count.
template <typename W>
void device_conduction_masks(const DpdnNetwork& net,
                             const std::vector<W>& var_words,
                             std::vector<W>& out);

/// Fixpoint closure of per-lane reachability. `reach` has one word per
/// node, pre-seeded with the source lanes; on return lane L of `reach[n]`
/// is set iff node n is connected to a seeded node in lane L through
/// devices whose `device_masks` lane L is set.
template <typename W>
void propagate_conduction(const DpdnNetwork& net,
                          const std::vector<W>& device_masks,
                          std::vector<W>& reach);

/// Per-node lane words: bit L set iff the node is connected to an external
/// node (X, Y or Z) in lane L. The 64-lane form of connected_to_external.
std::vector<std::uint64_t> connected_to_external_batch(
    const DpdnNetwork& net, const std::vector<std::uint64_t>& var_words);

/// Lane word of the conduction function between two nodes: bit L set iff
/// `from` conducts to `to` in lane L. The 64-lane form of conducts().
std::uint64_t conducts_batch(const DpdnNetwork& net,
                             const std::vector<std::uint64_t>& var_words,
                             NodeId from, NodeId to);

/// A structural conduction path: the device indices along a simple path.
struct ConductionPath {
  std::vector<std::size_t> device_indices;
  /// OR of literal requirements is contradiction-free: the path conducts for
  /// at least one complementary assignment.
  bool satisfiable = true;
  /// Distinct variables gating devices on the path (pass gates included).
  std::vector<VarId> variables;
};

/// Enumerates all simple paths from `from` to `to`. Contradictory paths
/// (requiring both polarities of one variable on logic switches) are marked
/// unsatisfiable but still returned. `max_paths` guards against explosion.
std::vector<ConductionPath> enumerate_paths(const DpdnNetwork& net,
                                            NodeId from, NodeId to,
                                            std::size_t max_paths = 100000);

/// Length (device count) of the shortest conducting path between two nodes
/// under `assignment`; returns SIZE_MAX when not connected. BFS over
/// conducting switches.
std::size_t shortest_conducting_path(const DpdnNetwork& net,
                                     std::uint64_t assignment, NodeId from,
                                     NodeId to);

}  // namespace sable
