// Experiment E4 (Fig. 5): the OAI22 design example.
//
// Runs both design methods on the complex differential network of the
// or-and-invert gate with 2+2 inputs, prints the resulting netlists, and
// verifies the paper's stated invariants: identical results from both
// methods, preserved device count, full connectivity, and the unrolled
// branch expressions of the figure.
#include <cstdio>

#include "core/checks.hpp"
#include "core/depth_analysis.hpp"
#include "core/fc_synthesizer.hpp"
#include "core/genuine_builder.hpp"
#include "core/transformer.hpp"
#include "expr/parser.hpp"
#include "expr/printer.hpp"
#include "netlist/conduction.hpp"

using namespace sable;

int main() {
  std::printf("== E4 (Fig. 5): OAI22 design example ========================\n");
  VarTable vars;
  const ExprPtr f = parse_expression("(A+B).(C+D)", vars);

  const DpdnNetwork genuine = build_genuine_dpdn(f, 4);
  std::printf("\ngenuine differential network (input, %zu devices):\n%s",
              genuine.device_count(), genuine.to_string(vars).c_str());
  const DepthReport genuine_depth = analyze_evaluation_depth(genuine);
  std::printf("  fully connected: %s | depth %zu..%zu\n",
              check_full_connectivity(genuine).fully_connected ? "yes" : "NO",
              genuine_depth.min_depth, genuine_depth.max_depth);

  // Method 4.1.
  const DpdnNetwork direct = synthesize_fc_dpdn(f, 4);
  std::printf("\nmethod 4.1 (from expression, %zu devices):\n%s",
              direct.device_count(), direct.to_string(vars).c_str());

  // Method 4.2.
  const TransformResult transformed =
      transform_to_fully_connected(genuine, vars);
  std::printf("\nmethod 4.2 (from schematic):\n");
  for (const auto& step : transformed.steps) {
    std::printf("  %s\n", step.c_str());
  }

  bool identical =
      transformed.network.device_count() == direct.device_count();
  for (std::size_t i = 0; identical && i < direct.devices().size(); ++i) {
    identical = transformed.network.devices()[i].gate ==
                    direct.devices()[i].gate &&
                transformed.network.devices()[i].a == direct.devices()[i].a &&
                transformed.network.devices()[i].b == direct.devices()[i].b;
  }

  const TruthTable fx =
      conduction_function(direct, DpdnNetwork::kNodeX, DpdnNetwork::kNodeZ);
  const TruthTable fy =
      conduction_function(direct, DpdnNetwork::kNodeY, DpdnNetwork::kNodeZ);
  const DepthReport depth = analyze_evaluation_depth(direct);

  std::printf("\nresults:\n");
  std::printf("  both methods identical:        %s\n", identical ? "yes" : "NO");
  std::printf("  device count preserved (8->8): %s\n",
              transformed.device_count_preserved ? "yes" : "NO");
  std::printf("  functionality:                 %s\n",
              check_functionality(direct, f).ok ? "OK" : "FAIL");
  std::printf("  fully connected:               %s\n",
              check_full_connectivity(direct).fully_connected ? "yes" : "NO");
  std::printf("  evaluation depth:              %zu..%zu (genuine: %zu..%zu; "
              "\"may increase\" per §4.2)\n",
              depth.min_depth, depth.max_depth, genuine_depth.min_depth,
              genuine_depth.max_depth);
  std::printf("  X branch == (A.B'+B).(C.D'+D):        %s\n",
              fx == table_of(parse_expression("(A.B'+B).(C.D'+D)", vars), 4)
                  ? "yes"
                  : "NO");
  std::printf("  Y branch == A'.B'.(C.D'+D) + C'.D':   %s\n",
              fy == table_of(
                        parse_expression("A'.B'.(C.D'+D) + C'.D'", vars), 4)
                  ? "yes"
                  : "NO");
  return 0;
}
