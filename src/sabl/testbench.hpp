// Transient testbenches for SABL and CVSL gates.
//
// SABL timing per cycle (period T):
//   [kT, kT+T/2)    evaluation: clk high; the cycle's complementary input
//                   appears `input_delay` after the clk edge (it is produced
//                   by the previous pipeline stage, which must evaluate
//                   first);
//   [kT+T/2, (k+1)T) precharge: clk low; the inputs *stay* complementary for
//                   `input_delay` (the previous stage takes that long to
//                   precharge its outputs to 0) — this overlap window is
//                   when the supply recharges the DPDN nodes that the
//                   evaluation discharged — and then return to 0.
//
// Per-cycle measurements: supply energy and charge over the cycle, the peak
// supply current, and the effective recharged capacitance q_precharge / VDD,
// which is the paper's Fig. 4 "C_tot".
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/network.hpp"
#include "sabl/cvsl_gate.hpp"
#include "sabl/sabl_gate.hpp"
#include "spice/transient.hpp"

namespace sable {

struct TestbenchOptions {
  double period = 4e-9;        ///< clock period [s]
  double edge = 50e-12;        ///< rise/fall time of every stimulus [s]
  double input_delay = 250e-12;  ///< stage delay producing the overlap [s]
  double dt = 2e-12;           ///< integration step [s]
  std::size_t warmup_cycles = 2;  ///< prepended copies of the first input
};

struct CycleMeasurement {
  std::uint64_t assignment = 0;
  double energy = 0.0;          ///< supply energy over the cycle [J]
  double charge = 0.0;          ///< supply charge over the cycle [C]
  double peak_current = 0.0;    ///< peak supply current [A]
  /// Supply charge of the precharge phase divided by VDD — the total
  /// capacitance recharged after the discharge event (Fig. 4's C_tot) [F].
  double recharged_capacitance = 0.0;
};

struct SablRunResult {
  spice::TranResult waves;
  /// One entry per *measured* cycle (warm-up cycles excluded).
  std::vector<CycleMeasurement> cycles;
  /// Start time of measured cycle k in `waves`.
  std::vector<double> cycle_start;
  double period = 0.0;
};

/// Per-cycle supply energies of a run in cycle order — the SPICE-level
/// power-trace samples (the transistor-level counterpart of the switch-
/// level trace engine's samples; used for calibration and spread metrics).
std::vector<double> cycle_energies(const SablRunResult& run);

/// Simulates the SABL gate of `net` over the complementary input sequence.
SablRunResult run_sabl_sequence(const DpdnNetwork& net, const VarTable& vars,
                                const Technology& tech,
                                const SizingPlan& sizing,
                                const std::vector<std::uint64_t>& inputs,
                                const TestbenchOptions& options = {});

/// Simulates the static CVSL gate over an input sequence (one assignment per
/// period, full-swing transitions, no precharge). Energy is measured per
/// transition window.
SablRunResult run_cvsl_sequence(const DpdnNetwork& net, const VarTable& vars,
                                const Technology& tech,
                                const SizingPlan& sizing,
                                const std::vector<std::uint64_t>& inputs,
                                const TestbenchOptions& options = {});

}  // namespace sable
