// The SABLCORP v2 chunk codec: lossless, dependency-free compression of
// recorded trace shards. A sample stream opens with one mode byte and
// the encoder picks, per shard, whichever mode stores fewer bytes:
//
// Mode 0 — delta + bit-plane + RLE, three stages that each turn a
// property of campaign data into runs of equal bytes:
//
//   1. XOR-delta along the trace axis, per sample level (column-major):
//      consecutive traces of one level have near-equal energies — for
//      constant-power styles often EXACTLY equal — so the IEEE-754 bit
//      patterns share sign/exponent/high-mantissa bits and the delta
//      words are mostly zero in the high bits.
//   2. 64×64 bit-plane transpose per 64-value block (the lane packers'
//      tier-dispatched kernels, via bit_transpose_blocks): bit v of
//      every delta word lands contiguously in plane v, so a bit that is
//      constant across a block becomes 8 equal bytes, and the buffer is
//      laid out plane-major so constant planes concatenate across the
//      whole shard.
//   3. Byte-level RLE with LEB128 varint framing: token = (len << 1) |
//      is_literal; a run token is followed by its one repeated byte, a
//      literal token by `len` verbatim bytes. Runs are emitted at >= 4
//      equal bytes, so incompressible planes cost < 1% framing overhead.
//
// Mode 1 — per-level dictionary. A NOISELESS simulated energy is a sum
// of discrete per-node switching energies, so each level's column draws
// from a small set of distinct doubles (often one for constant-power
// styles, dozens for static CMOS) even though XOR-deltas between
// consecutive draws look random. The stream stores, per level, a varint
// count and the distinct bit patterns in first-appearance order, then
// the column-major u8 index stream under the stage-3 RLE. The encoder
// falls back to mode 0 whenever any level exceeds 255 distinct values
// (any campaign with measurement noise).
//
// Packed plaintext states get stages 2'+3: a byte-column-major reorder
// (byte k of every trace contiguous — low S-box nibbles vary, high pad
// bytes do not) and the same RLE framing, no delta.
//
// Every stage is exactly invertible and operates on whole shards, so v2
// chunks stay independently decodable and seekable like v1's raw chunks.
// Decoding writes into caller-provided buffers sized from the VALIDATED
// shard layout — never from fields of the (possibly hostile) stream —
// and a malformed stream throws typed IoErrors, never reads or writes
// out of bounds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sable {

class ByteReader;

/// Reusable intermediate buffers of the codec. Encode/decode grow them
/// to the largest shard seen and never shrink — one scratch per thread
/// keeps replay memory at O(threads * shard bytes).
struct CodecScratch {
  std::vector<std::uint64_t> words;   // delta words / dictionary values
  std::vector<std::uint8_t> planes;   // plane-major image / index columns
  std::vector<std::uint8_t> mode_a;   // candidate streams the encoder
  std::vector<std::uint8_t> mode_b;   //   sizes against each other
};

/// Appends the encoded plaintext stream (count traces of `stride` packed
/// state bytes) to `out`; returns the number of bytes appended.
std::size_t corpus_encode_plaintexts(const std::uint8_t* pts,
                                     std::size_t count, std::size_t stride,
                                     CodecScratch& scratch,
                                     std::vector<std::uint8_t>& out);

/// Appends the encoded sample stream (count traces of `width` doubles,
/// trace-major as stored in memory) to `out`; returns bytes appended.
std::size_t corpus_encode_samples(const double* samples, std::size_t count,
                                  std::size_t width, CodecScratch& scratch,
                                  std::vector<std::uint8_t>& out);

/// Decodes exactly `count * stride` plaintext bytes from `in` (a reader
/// spanning exactly the stored stream) into `out`. Throws BadFileError
/// on malformed framing, FileTruncatedError when the stream ends early.
void corpus_decode_plaintexts(ByteReader& in, std::size_t count,
                              std::size_t stride, CodecScratch& scratch,
                              std::uint8_t* out);

/// Decodes exactly `count * width` doubles from `in` into `out`
/// (trace-major), bit-exactly reproducing the encoded values.
void corpus_decode_samples(ByteReader& in, std::size_t count,
                           std::size_t width, CodecScratch& scratch,
                           double* out);

}  // namespace sable
