// Parasitic capacitance extraction for DPDN nodes.
//
// Each DPDN node carries: the junction capacitance of every source/drain
// terminal attached to it, the gate-overlap capacitance of those terminals,
// and a lumped wire capacitance. These per-node values are the C's that the
// paper sums in Fig. 4 ("C_tot") and that the switch-level energy model
// recharges every precharge phase.
#pragma once

#include <vector>

#include "netlist/network.hpp"
#include "tech/technology.hpp"

namespace sable {

/// Capacitance of every DPDN node (indexed by NodeId; X=0, Y=1, Z=2, then
/// internals) for DPDN devices of width `sizing.dpdn_width`.
std::vector<double> dpdn_node_capacitances(const DpdnNetwork& net,
                                           const Technology& tech,
                                           const SizingPlan& sizing);

/// Sum of the internal-node capacitances (excludes X, Y, Z).
double total_internal_capacitance(const DpdnNetwork& net,
                                  const Technology& tech,
                                  const SizingPlan& sizing);

/// Gate capacitance presented to one input literal polarity: the sum of
/// gate caps of devices driven by that literal.
double input_capacitance(const DpdnNetwork& net, const Technology& tech,
                         const SizingPlan& sizing, VarId var, bool positive);

}  // namespace sable
