#include "cell/circuit_sim.hpp"

#include <bit>

#include "expr/truth_table.hpp"
#include "util/error.hpp"

namespace sable {

namespace {

// Computes all gate output values for one input vector; returns the vector
// of gate values (scalar reference path used by evaluate_circuit).
std::vector<bool> evaluate_gates(const GateCircuit& circuit,
                                 std::uint64_t input_bits) {
  std::vector<bool> value(circuit.gates().size(), false);
  auto resolve = [&](const SignalRef& ref) {
    const bool raw = ref.kind == SignalRef::Kind::kInput
                         ? ((input_bits >> ref.index) & 1u) != 0
                         : value[ref.index];
    return raw == ref.positive;
  };
  for (std::size_t g = 0; g < circuit.gates().size(); ++g) {
    const GateInstance& inst = circuit.gates()[g];
    const Cell& cell = circuit.cells()[inst.cell_index];
    std::uint64_t assignment = 0;
    for (std::size_t k = 0; k < inst.inputs.size(); ++k) {
      if (resolve(inst.inputs[k])) assignment |= std::uint64_t{1} << k;
    }
    value[g] = evaluate(cell.function, assignment);
  }
  return value;
}

std::uint64_t collect_outputs(const GateCircuit& circuit,
                              std::uint64_t input_bits,
                              const std::vector<bool>& gate_values) {
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < circuit.outputs().size(); ++i) {
    const SignalRef& ref = circuit.outputs()[i];
    const bool raw = ref.kind == SignalRef::Kind::kInput
                         ? ((input_bits >> ref.index) & 1u) != 0
                         : gate_values[ref.index];
    if (raw == ref.positive) out |= std::uint64_t{1} << i;
  }
  return out;
}

}  // namespace

std::vector<std::size_t> gate_levels(const GateCircuit& circuit) {
  std::vector<std::size_t> levels(circuit.gates().size(), 1);
  for (std::size_t g = 0; g < circuit.gates().size(); ++g) {
    for (const auto& in : circuit.gates()[g].inputs) {
      if (in.kind == SignalRef::Kind::kGate) {
        levels[g] = std::max(levels[g], levels[in.index] + 1);
      }
    }
  }
  return levels;
}

template <typename W>
BatchGateEvaluatorT<W>::BatchGateEvaluatorT(const GateCircuit& circuit)
    : circuit_(circuit) {
  minterms_.resize(circuit.gates().size());
  gate_inputs_.resize(circuit.gates().size());
  values_.assign(circuit.gates().size(), LaneTraits<W>::zero());
  primary_.assign(circuit.num_primary_inputs(), LaneTraits<W>::zero());
  for (std::size_t g = 0; g < circuit.gates().size(); ++g) {
    const GateInstance& inst = circuit.gates()[g];
    const Cell& cell = circuit.cells()[inst.cell_index];
    gate_inputs_[g].assign(inst.inputs.size(), LaneTraits<W>::zero());
    const std::size_t rows = std::size_t{1} << cell.num_inputs;
    for (std::size_t m = 0; m < rows; ++m) {
      // Qualified: the member evaluate() shadows the truth-table helper.
      if (sable::evaluate(cell.function, m)) {
        minterms_[g].push_back(static_cast<std::uint8_t>(m));
      }
    }
  }
}

template <typename W>
void BatchGateEvaluatorT<W>::evaluate(const std::vector<W>& input_words) {
  SABLE_ASSERT(input_words.size() >= circuit_.num_primary_inputs(),
               "one lane word per primary input required");
  for (std::size_t i = 0; i < primary_.size(); ++i) {
    primary_[i] = input_words[i];
  }
  for (std::size_t g = 0; g < circuit_.gates().size(); ++g) {
    const GateInstance& inst = circuit_.gates()[g];
    std::vector<W>& in = gate_inputs_[g];
    for (std::size_t k = 0; k < inst.inputs.size(); ++k) {
      const SignalRef& ref = inst.inputs[k];
      const W& raw = ref.kind == SignalRef::Kind::kInput ? primary_[ref.index]
                                                         : values_[ref.index];
      in[k] = ref.positive ? raw : ~raw;
    }
    // Sum of minterms over lane words: a lane is 1 iff its cell-input
    // assignment is one of the function's satisfying rows.
    W value = LaneTraits<W>::zero();
    for (const std::uint8_t m : minterms_[g]) {
      W term = LaneTraits<W>::ones();
      for (std::size_t k = 0; k < in.size(); ++k) {
        term &= ((m >> k) & 1u) != 0 ? in[k] : ~in[k];
      }
      value |= term;
    }
    values_[g] = value;
  }
}

template <typename W>
W BatchGateEvaluatorT<W>::output_word(std::size_t i) const {
  const SignalRef& ref = circuit_.outputs()[i];
  const W& raw = ref.kind == SignalRef::Kind::kInput ? primary_[ref.index]
                                                     : values_[ref.index];
  return ref.positive ? raw : ~raw;
}

template <typename W>
std::uint64_t outputs_for_lane(const std::vector<W>& output_words,
                               std::size_t lane) {
  std::uint64_t chunks[LaneTraits<W>::kChunks];
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < output_words.size(); ++i) {
    LaneTraits<W>::to_chunks(output_words[i], chunks);
    if (((chunks[lane / 64] >> (lane % 64)) & 1u) != 0) {
      out |= std::uint64_t{1} << i;
    }
  }
  return out;
}

// ---- DifferentialCircuitSimBatchT -----------------------------------------

template <typename W>
DifferentialCircuitSimBatchT<W>::DifferentialCircuitSimBatchT(
    const GateCircuit& circuit)
    : circuit_(circuit), eval_(circuit) {
  gate_sims_.reserve(circuit.gates().size());
  for (const auto& inst : circuit.gates()) {
    const Cell& cell = circuit.cells()[inst.cell_index];
    gate_sims_.emplace_back(cell.network, cell.energy_model);
  }
  levels_ = gate_levels(circuit);
  for (std::size_t l : levels_) num_levels_ = std::max(num_levels_, l);
}

template <typename W>
DifferentialCircuitSimBatchT<W>::DifferentialCircuitSimBatchT(
    const GateCircuit& circuit, std::vector<GateEnergyModel> models)
    : circuit_(circuit), eval_(circuit) {
  SABLE_REQUIRE(models.size() == circuit.gates().size(),
                "one energy model per gate instance required");
  gate_sims_.reserve(circuit.gates().size());
  for (std::size_t g = 0; g < circuit.gates().size(); ++g) {
    const Cell& cell = circuit.cells()[circuit.gates()[g].cell_index];
    gate_sims_.emplace_back(cell.network, std::move(models[g]));
  }
  levels_ = gate_levels(circuit);
  for (std::size_t l : levels_) num_levels_ = std::max(num_levels_, l);
}

template <typename W>
void DifferentialCircuitSimBatchT<W>::cycle(const std::vector<W>& input_words,
                                            const W& lane_mask,
                                            BatchCycleResultT<W>& out) {
  eval_.evaluate(input_words);
  lane_fill_selected(lane_mask, 0.0, out.energy.data());
  for (std::size_t g = 0; g < gate_sims_.size(); ++g) {
    gate_sims_[g].cycle(eval_.gate_input_words(g), lane_mask,
                        gate_energy_.data());
    lane_accumulate_selected(lane_mask, gate_energy_.data(),
                             out.energy.data());
  }
  out.output_words.resize(circuit_.outputs().size());
  for (std::size_t i = 0; i < circuit_.outputs().size(); ++i) {
    out.output_words[i] = eval_.output_word(i);
  }
}

template <typename W>
void DifferentialCircuitSimBatchT<W>::reset() {
  for (SablGateSimBatchT<W>& sim : gate_sims_) sim.reset(true);
}

template <typename W>
DifferentialCircuitSimBatchT<W> DifferentialCircuitSimBatchT<W>::clone_fresh()
    const {
  // Rebuilding through the per-instance-model constructor preserves any
  // custom energy models (e.g. balanced routing loads from src/balance).
  std::vector<GateEnergyModel> models;
  models.reserve(gate_sims_.size());
  for (const SablGateSimBatchT<W>& sim : gate_sims_) {
    models.push_back(sim.model());
  }
  return DifferentialCircuitSimBatchT(circuit_, std::move(models));
}

template <typename W>
void DifferentialCircuitSimBatchT<W>::cycle_sampled(
    const std::vector<W>& input_words, const W& lane_mask,
    SampledBatchCycleResultT<W>& out) {
  eval_.evaluate(input_words);
  out.level_energy.resize(num_levels_);
  for (auto& row : out.level_energy) {
    lane_fill_selected(lane_mask, 0.0, row.data());
  }
  for (std::size_t g = 0; g < gate_sims_.size(); ++g) {
    gate_sims_[g].cycle(eval_.gate_input_words(g), lane_mask,
                        gate_energy_.data());
    auto& row = out.level_energy[levels_[g] - 1];
    lane_accumulate_selected(lane_mask, gate_energy_.data(), row.data());
  }
  out.output_words.resize(circuit_.outputs().size());
  for (std::size_t i = 0; i < circuit_.outputs().size(); ++i) {
    out.output_words[i] = eval_.output_word(i);
  }
}

// ---- CmosCircuitSimBatchT -------------------------------------------------

template <typename W>
CmosCircuitSimBatchT<W>::CmosCircuitSimBatchT(const GateCircuit& circuit,
                                              double switch_energy)
    : circuit_(circuit), eval_(circuit), switch_energy_(switch_energy) {
  previous_values_.assign(circuit.gates().size(), 0);
  levels_ = gate_levels(circuit);
  for (std::size_t l : levels_) num_levels_ = std::max(num_levels_, l);
}

template <typename W>
template <typename RowFn>
void CmosCircuitSimBatchT<W>::cycle_history(const std::vector<W>& input_words,
                                            const W& lane_mask,
                                            RowFn&& row_for_gate,
                                            std::vector<W>& output_words) {
  using T = LaneTraits<W>;
  constexpr std::size_t kChunks = T::kChunks;
  eval_.evaluate(input_words);
  std::uint64_t m[kChunks];
  T::to_chunks(lane_mask, m);
  // History is logically 64-lane: chunk j's previous values are chunk j-1
  // of this call (the stored history for chunk 0), and only chunk 0 can
  // face never-seen lanes — later chunks' predecessors are this very call.
  std::uint64_t seen_prefix[kChunks];
  std::uint64_t seen = seen_mask_;
  for (std::size_t j = 0; j < kChunks; ++j) {
    seen_prefix[j] = seen;
    seen |= m[j];
  }
  std::uint64_t c[kChunks];
  for (std::size_t g = 0; g < circuit_.gates().size(); ++g) {
    T::to_chunks(eval_.value_word(g), c);
    std::uint64_t prev = previous_values_[g];
    double* row = row_for_gate(g);
    for (std::size_t j = 0; j < kChunks; ++j) {
      // Static CMOS draws supply energy when the output rises: the lane
      // has no history yet, or its previous value was 0.
      const std::uint64_t rising = c[j] & ~(prev & seen_prefix[j]) & m[j];
      double* e = row + 64 * j;
      for (std::uint64_t w = rising; w != 0; w &= w - 1) {
        e[std::countr_zero(w)] += switch_energy_;
      }
      prev = (prev & ~m[j]) | (c[j] & m[j]);
    }
    previous_values_[g] = prev;
  }
  seen_mask_ = seen;
  output_words.resize(circuit_.outputs().size());
  for (std::size_t i = 0; i < circuit_.outputs().size(); ++i) {
    output_words[i] = eval_.output_word(i);
  }
}

template <typename W>
void CmosCircuitSimBatchT<W>::cycle(const std::vector<W>& input_words,
                                    const W& lane_mask,
                                    BatchCycleResultT<W>& out) {
  lane_fill_selected(lane_mask, 0.0, out.energy.data());
  cycle_history(input_words, lane_mask,
                [&](std::size_t) { return out.energy.data(); },
                out.output_words);
}

template <typename W>
void CmosCircuitSimBatchT<W>::cycle_sampled(const std::vector<W>& input_words,
                                            const W& lane_mask,
                                            SampledBatchCycleResultT<W>& out) {
  out.level_energy.resize(num_levels_);
  for (auto& row : out.level_energy) {
    lane_fill_selected(lane_mask, 0.0, row.data());
  }
  cycle_history(
      input_words, lane_mask,
      [&](std::size_t g) { return out.level_energy[levels_[g] - 1].data(); },
      out.output_words);
}

template <typename W>
void CmosCircuitSimBatchT<W>::reset() {
  previous_values_.assign(circuit_.gates().size(), 0);
  seen_mask_ = 0;
}

template <typename W>
CmosCircuitSimBatchT<W> CmosCircuitSimBatchT<W>::clone_fresh() const {
  return CmosCircuitSimBatchT(circuit_, switch_energy_);
}

#define SABLE_INSTANTIATE_CIRCUIT_SIM(W)                                  \
  template class BatchGateEvaluatorT<W>;                                  \
  template class DifferentialCircuitSimBatchT<W>;                         \
  template class CmosCircuitSimBatchT<W>;                                 \
  template std::uint64_t outputs_for_lane<W>(const std::vector<W>&,       \
                                             std::size_t);
SABLE_FOR_EACH_LANE_WORD(SABLE_INSTANTIATE_CIRCUIT_SIM)
#undef SABLE_INSTANTIATE_CIRCUIT_SIM

// ---- scalar wrappers (width-1 case of the batch kernels) ------------------

DifferentialCircuitSim::DifferentialCircuitSim(const GateCircuit& circuit)
    : batch_(circuit), words_(circuit.num_primary_inputs(), 0) {}

DifferentialCircuitSim::DifferentialCircuitSim(
    const GateCircuit& circuit, std::vector<GateEnergyModel> models)
    : batch_(circuit, std::move(models)),
      words_(circuit.num_primary_inputs(), 0) {}

CycleResult DifferentialCircuitSim::cycle(std::uint64_t input_bits) {
  pack_lane_words(&input_bits, 1, words_);
  batch_.cycle(words_, 1u, scratch_);
  return CycleResult{outputs_for_lane(scratch_.output_words, 0),
                     scratch_.energy[0]};
}

SampledCycleResult DifferentialCircuitSim::cycle_sampled(
    std::uint64_t input_bits) {
  pack_lane_words(&input_bits, 1, words_);
  batch_.cycle_sampled(words_, 1u, sampled_scratch_);
  SampledCycleResult result;
  result.level_energy.reserve(sampled_scratch_.level_energy.size());
  for (const auto& row : sampled_scratch_.level_energy) {
    result.level_energy.push_back(row[0]);
  }
  result.outputs = outputs_for_lane(sampled_scratch_.output_words, 0);
  return result;
}

CmosCircuitSim::CmosCircuitSim(const GateCircuit& circuit,
                               double switch_energy)
    : batch_(circuit, switch_energy),
      words_(circuit.num_primary_inputs(), 0) {}

CycleResult CmosCircuitSim::cycle(std::uint64_t input_bits) {
  pack_lane_words(&input_bits, 1, words_);
  batch_.cycle(words_, 1u, scratch_);
  return CycleResult{outputs_for_lane(scratch_.output_words, 0),
                     scratch_.energy[0]};
}

std::uint64_t evaluate_circuit(const GateCircuit& circuit,
                               std::uint64_t input_bits) {
  const std::vector<bool> values = evaluate_gates(circuit, input_bits);
  return collect_outputs(circuit, input_bits, values);
}

}  // namespace sable
