// Experiment E3 (Fig. 4): total discharged capacitance per input event.
//
// The paper shows the discharge events of the SABL AND-NAND gate for the
// (0,1)- and (1,1)-inputs and annotates C_tot = 19.32 fF vs 19.38 fF: the
// same capacitance discharges (and is recharged from the supply) whichever
// input is applied. We reproduce the measurement twice:
//   - analytically, from the extracted node capacitances and the
//     switch-level discharge sets;
//   - electrically, as supply charge of the precharge phase / VDD in the
//     transistor-level simulation,
// for the fully connected network and, as the contrast, the genuine one.
#include <cstdio>

#include "core/fc_synthesizer.hpp"
#include "core/genuine_builder.hpp"
#include "expr/parser.hpp"
#include "netlist/conduction.hpp"
#include "sabl/testbench.hpp"
#include "tech/capacitance.hpp"
#include "util/strings.hpp"

using namespace sable;

namespace {

void analyze(const char* label, const DpdnNetwork& net, const VarTable& vars) {
  const Technology tech = Technology::generic_180nm();
  const SizingPlan sizing = SizingPlan::defaults(tech);

  std::printf("\n-- %s network --------------------------------------\n",
              label);

  // Analytic: which DPDN nodes discharge per input, and their capacitance.
  const auto caps = dpdn_node_capacitances(net, tech, sizing);
  std::printf("  switch-level discharge sets (DPDN nodes only):\n");
  std::printf("  input   discharged nodes                   C_dpdn\n");
  for (std::uint64_t a = 0; a < 4; ++a) {
    const auto connected = connected_to_external(net, a);
    std::string nodes;
    double total = 0.0;
    for (NodeId n = 0; n < net.node_count(); ++n) {
      if (!connected[n]) continue;
      if (!nodes.empty()) nodes += ", ";
      nodes += net.node_name(n);
      total += caps[n];
    }
    std::printf("  (%llu,%llu)   %-35s %s\n", (unsigned long long)(a & 1),
                (unsigned long long)(a >> 1), nodes.c_str(),
                format_eng(total, "F").c_str());
  }

  // Electrical: effective recharged capacitance from the SPICE testbench.
  const std::vector<std::uint64_t> seq = {0b10, 0b11, 0b00, 0b01};
  const SablRunResult run = run_sabl_sequence(net, vars, tech, sizing, seq);
  std::printf("  transistor-level C_tot = q(precharge)/VDD:\n");
  for (const auto& c : run.cycles) {
    std::printf("  (%llu,%llu)   C_tot = %s\n",
                (unsigned long long)(c.assignment & 1),
                (unsigned long long)(c.assignment >> 1),
                format_eng(c.recharged_capacitance, "F").c_str());
  }
  double lo = run.cycles.front().recharged_capacitance;
  double hi = lo;
  for (const auto& c : run.cycles) {
    lo = std::min(lo, c.recharged_capacitance);
    hi = std::max(hi, c.recharged_capacitance);
  }
  std::printf("  spread: %.2f%%   (paper Fig. 4: 19.32 fF vs 19.38 fF = 0.31%%)\n",
              (hi - lo) / hi * 100.0);
}

}  // namespace

int main() {
  std::printf("== E3 (Fig. 4): discharged capacitance per input event ======\n");
  VarTable vars;
  const ExprPtr f = parse_expression("A.B", vars);
  analyze("fully connected", synthesize_fc_dpdn(f, 2), vars);
  analyze("genuine", build_genuine_dpdn(f, 2), vars);
  std::printf(
      "\nThe fully connected network discharges every internal node for\n"
      "every input; the genuine network skips W on (0,0), so its C_tot is\n"
      "input-dependent — the memory effect of Fig. 2.\n");
  return 0;
}
