#include "core/early_propagation.hpp"

#include "netlist/union_find.hpp"

namespace sable {

namespace {

// Connectivity where a switch conducts only if its variable has arrived
// (bit set in `arrived`) and its literal is satisfied by `values`.
bool conducts_partial(const DpdnNetwork& net, std::uint64_t arrived,
                      std::uint64_t values, NodeId from, NodeId to) {
  UnionFind uf(net.node_count());
  for (const auto& d : net.devices()) {
    if (((arrived >> d.gate.var) & 1u) == 0) continue;  // still precharged
    if (d.gate.conducts(values)) uf.unite(d.a, d.b);
  }
  return uf.same(from, to);
}

}  // namespace

EarlyPropagationReport analyze_early_propagation(const DpdnNetwork& net) {
  EarlyPropagationReport report;
  const std::size_t n = net.num_vars();
  const std::uint64_t full = (std::uint64_t{1} << n) - 1;

  for (std::uint64_t arrived = 0; arrived < full; ++arrived) {
    // Enumerate values of the arrived variables only (others are don't-
    // care for conduction since their switches are off).
    std::uint64_t sub = arrived;
    for (;;) {  // iterate all subsets `sub` of `arrived` as value patterns
      ++report.total_scenarios;
      const bool early =
          conducts_partial(net, arrived, sub, DpdnNetwork::kNodeX,
                           DpdnNetwork::kNodeZ) ||
          conducts_partial(net, arrived, sub, DpdnNetwork::kNodeY,
                           DpdnNetwork::kNodeZ);
      if (early) {
        if (report.early_scenarios == 0) {
          report.witness_arrived_mask = arrived;
          report.witness_values = sub;
        }
        ++report.early_scenarios;
      }
      if (sub == 0) break;
      sub = (sub - 1) & arrived;
    }
  }
  report.free_of_early_propagation = report.early_scenarios == 0;
  return report;
}

}  // namespace sable
