// Recorded trace corpora: the on-disk twin of a streamed campaign.
//
// A corpus file stores one campaign's traces in the engine's canonical
// shard decomposition — SoA per shard (packed plaintext states, then
// sample rows) — so replay hands whole shard blocks to distinguisher
// accumulators exactly as the live engine would: same shard boundaries,
// same block order, bit-identical trace data. Shards are individually
// seekable through a per-shard index, which is what makes split-range
// multi-process replay (worker k reads only shards [a, b)) an O(1)
// seek instead of a scan.
//
// Layout (all integers little-endian; header fields 8-byte aligned, each
// shard chunk 8-byte aligned so raw sample rows are safely
// mmap-addressable as double arrays):
//
//   magic            8 bytes  "SABLCORP"
//   version          u32      1 or 2
//   kind             u32      0 = scalar, 1 = cycle-sampled
//   compression      u32      v2 only: 0 = none, 1 = delta+plane+RLE
//   manifest         CampaignManifest (spec hash, seed, counts, key)
//   pt_stride        u64      bytes of packed plaintext state per trace
//   sample_width     u64      doubles per trace (1 for scalar)
//   [pad to 8]
//   shard index      v1: num_shards x { offset u64, count u64 }
//                    v2: num_shards x { offset u64, count u64,
//                                       pt_bytes u64, samp_bytes u64 }
//   shard chunks     per shard: the stored plaintext stream (pt_bytes,
//                    padded to 8), then the stored sample stream
//                    (samp_bytes, padded to 8)
//
// With compression none the stored streams ARE the raw SoA data
// (pt_bytes = count * pt_stride, samp_bytes = count * sample_width * 8),
// byte-identical to the v1 chunk layout; with delta+plane+RLE each
// stream is the io/codec.hpp encoding and the index's stored sizes are
// what make chunks independently seekable. v1 files (always raw) remain
// fully readable.
//
// CorpusWriter streams: the header and index placeholder go out first,
// shard chunks append in canonical order, finish() back-patches the
// index and renames the .tmp file into place — constant memory however
// long the campaign, and no half-written corpus ever appears under the
// final name. CorpusReader validates the whole structure ONCE up front
// (magic, version, counts, every index entry against the file size and
// the manifest's shard layout, decoded-size ceilings on compressed
// chunks) and caches the per-shard extents — accessors and replay trust
// that validation and are plain pointer arithmetic / bounded decodes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "io/codec.hpp"
#include "io/manifest.hpp"
#include "io/serial.hpp"

namespace sable {

/// Trace data kind tags of the corpus format (mirrors TraceDataKind
/// without dragging the dpa layer into io).
inline constexpr std::uint32_t kCorpusKindScalar = 0;
inline constexpr std::uint32_t kCorpusKindSampled = 1;

/// Chunk compression tags (v2 header field; v1 files are always raw).
inline constexpr std::uint32_t kCorpusCompressionNone = 0;
inline constexpr std::uint32_t kCorpusCompressionDeltaPlaneRle = 1;

/// Format versions the writer can emit and the reader accepts.
inline constexpr std::uint32_t kCorpusVersion1 = 1;
inline constexpr std::uint32_t kCorpusVersion2 = 2;

/// Everything a corpus file's header pins down.
struct CorpusManifest {
  CampaignManifest campaign;
  std::uint32_t kind = kCorpusKindScalar;
  std::uint32_t compression = kCorpusCompressionNone;
  std::uint64_t pt_stride = 1;
  std::uint64_t sample_width = 1;
};

/// One decoded (or raw, zero-copy) shard: `count` packed plaintext
/// states of pt_stride bytes and `count * sample_width` doubles. Valid
/// as long as its backing storage (the mapping, a scratch, or a
/// SharedCorpus lease) stays alive.
struct CorpusShardView {
  const std::uint8_t* pts = nullptr;
  const double* samples = nullptr;
  std::size_t count = 0;
};

/// Per-thread reusable decode buffers: replay over compressed corpora
/// stays O(threads * shard bytes) however many shards stream through.
struct CorpusDecodeScratch {
  CodecScratch codec;
  std::vector<std::uint8_t> pts;
  std::vector<double> samples;
};

/// Streaming corpus writer. Feed shards strictly in canonical order
/// (shard 0, 1, ...), one append_shard per shard with the layout's exact
/// trace count, then finish(). The destructor discards an unfinished
/// file (removes the .tmp) — only finish() publishes. `version` selects
/// the emitted format; version 1 requires compression none.
class CorpusWriter {
 public:
  CorpusWriter(const std::string& path, const CorpusManifest& manifest,
               std::uint32_t version = kCorpusVersion2);
  ~CorpusWriter();
  CorpusWriter(const CorpusWriter&) = delete;
  CorpusWriter& operator=(const CorpusWriter&) = delete;

  /// Appends the next canonical shard's traces: `count` packed plaintext
  /// states (`pt_stride` bytes each) and `count * sample_width` doubles.
  /// Throws InvalidArgument when called out of order or with the wrong
  /// count for the shard, IoError on write failure.
  void append_shard(const std::uint8_t* pts, const double* samples,
                    std::size_t count);

  /// Back-patches the shard index and atomically publishes the file.
  /// Requires every shard to have been appended.
  void finish();

  const std::string& path() const { return path_; }

 private:
  void write_raw(const void* data, std::size_t size);

  std::string path_;
  std::string tmp_path_;
  CorpusManifest manifest_;
  std::uint32_t version_;
  std::FILE* file_ = nullptr;
  std::size_t next_shard_ = 0;
  std::size_t index_offset_ = 0;  // file offset of the shard index
  std::size_t write_offset_ = 0;  // current file offset
  std::vector<std::uint64_t> index_;  // flattened entries (2 or 4 u64s)
  CodecScratch scratch_;              // encode intermediates, reused
  std::vector<std::uint8_t> encoded_;  // encoded streams, reused
  bool finished_ = false;
};

/// Validated, mmap-backed corpus reader. Construction verifies magic,
/// version, kind, the manifest's internal consistency and EVERY shard
/// index entry (offset alignment, count against the canonical layout,
/// stored extents against the file size, decoded-size ceilings), then
/// caches the per-shard extents — every accessor below trusts that
/// one-time validation.
class CorpusReader {
 public:
  explicit CorpusReader(const std::string& path);

  const CorpusManifest& manifest() const { return manifest_; }
  const std::string& path() const { return file_.path(); }
  std::uint32_t version() const { return version_; }
  bool compressed() const {
    return manifest_.compression != kCorpusCompressionNone;
  }
  std::size_t num_shards() const { return manifest_.campaign.num_shards; }

  /// Canonical start index / trace count of shard `s` (throws
  /// ShardIndexError past num_shards()).
  std::size_t shard_start(std::size_t s) const;
  std::size_t shard_count(std::size_t s) const;

  /// Zero-copy pointers into the mapping: packed plaintext states
  /// (shard_count(s) * pt_stride bytes) and sample rows
  /// (shard_count(s) * sample_width doubles, 8-byte aligned). Raw
  /// corpora only — compressed chunks have no in-mapping raw form
  /// (InvalidArgument); go through read_shard instead.
  const std::uint8_t* shard_plaintexts(std::size_t s) const;
  const double* shard_samples(std::size_t s) const;

  /// The shard's traces regardless of compression: zero-copy views into
  /// the mapping for raw corpora, decoded through `scratch` for
  /// compressed ones (the view then aliases the scratch and is
  /// invalidated by its next use). Typed IoErrors on corrupt streams.
  CorpusShardView read_shard(std::size_t s, CorpusDecodeScratch& scratch) const;

  /// Decodes a compressed shard into caller-owned buffers (resized to
  /// the exact decoded sizes) — the SharedCorpus cache's fill hook.
  void decode_shard_into(std::size_t s, CodecScratch& codec,
                         std::vector<std::uint8_t>& pts,
                         std::vector<double>& samples) const;

  /// Stored (on-disk, possibly compressed) vs raw (decoded SoA) bytes of
  /// shard `s` — corpus-info and the bench report ratios from these.
  std::uint64_t shard_stored_bytes(std::size_t s) const;
  std::uint64_t shard_raw_bytes(std::size_t s) const;

 private:
  struct Shard {
    std::uint64_t offset;      // chunk start (8-aligned)
    std::uint64_t count;       // traces, equals the canonical layout
    std::uint64_t pt_bytes;    // stored plaintext stream size
    std::uint64_t samp_bytes;  // stored sample stream size
  };

  void require_shard(std::size_t s) const;

  MappedFile file_;
  CorpusManifest manifest_;
  std::uint32_t version_ = kCorpusVersion1;
  std::vector<Shard> shards_;  // validated at construction
};

}  // namespace sable
