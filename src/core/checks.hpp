// Exhaustive verification of differential pull-down networks.
//
// Functionality (§2): the network must conduct X–Z exactly when f = 1 and
// Y–Z exactly when f = 0, and must never short X to Y (a differential short
// would discharge both outputs and break the one-charging-event invariant).
//
// Full connectivity (§3): for every complementary input assignment, every
// internal node must be connected to one of the external nodes X, Y, Z, so
// that it is discharged in every evaluation phase and recharged in every
// precharge phase — the memoryless property that makes the per-cycle charge
// constant.
#pragma once

#include <cstdint>
#include <vector>

#include "expr/expression.hpp"
#include "netlist/network.hpp"

namespace sable {

struct FunctionalityReport {
  bool ok = false;
  bool x_branch_matches = false;  // conduct(X,Z) == f
  bool y_branch_matches = false;  // conduct(Y,Z) == f'
  bool no_xy_short = false;       // conduct(X,Y) == 0 everywhere
  /// Assignments where any of the three conditions failed.
  std::vector<std::uint64_t> failing_assignments;
};

/// Checks the network against `f` over all 2^num_vars assignments.
FunctionalityReport check_functionality(const DpdnNetwork& net,
                                        const ExprPtr& f);

struct ConnectivityViolation {
  std::uint64_t assignment = 0;
  NodeId node = 0;
};

struct ConnectivityReport {
  bool fully_connected = false;
  /// Every (assignment, internal node) pair left floating.
  std::vector<ConnectivityViolation> violations;
};

/// Checks the §3 fully-connected property exhaustively.
ConnectivityReport check_full_connectivity(const DpdnNetwork& net);

}  // namespace sable
