// Exports the Fig. 3 testbench as an ngspice-compatible deck.
//
// The internal mini-SPICE engine is convenient, but an auditor should not
// have to trust it: this tool emits the exact same circuit (same level-1
// parameters, same stimuli) as a standard SPICE deck, so the Fig. 3/4
// results can be cross-checked in ngspice:
//
//   ./export_spice > sabl_andnand.cir
//   ngspice -b sabl_andnand.cir
#include <cstdio>

#include "core/fc_synthesizer.hpp"
#include "expr/parser.hpp"
#include "sabl/sabl_gate.hpp"
#include "spice/netlist_export.hpp"

using namespace sable;

int main() {
  VarTable vars;
  const ExprPtr f = parse_expression("A.B", vars);
  const DpdnNetwork net = synthesize_fc_dpdn(f, 2);
  const Technology tech = Technology::generic_180nm();
  const SizingPlan sizing = SizingPlan::defaults(tech);

  SablGateCircuit gate = assemble_sabl_gate(net, vars, tech, sizing);
  spice::Circuit& ckt = gate.circuit;

  // Fig. 3 stimulus: two cycles, inputs (0,1) then (1,1); see
  // sabl/testbench.hpp for the timing rationale.
  const double period = 4e-9;
  const double edge = 50e-12;
  const double delay = 250e-12;
  ckt.add_vsource("vdd", "vdd", "0", spice::Waveform::dc(tech.vdd));
  ckt.add_vsource("clk", "clk", "0",
                  spice::Waveform::pulse(0.0, tech.vdd, 0.0, edge, edge,
                                         period / 2 - edge, period));
  auto pulse_at = [&](std::size_t cycle) {
    const double t0 = static_cast<double>(cycle) * period + delay;
    return spice::Waveform::pwl({{0.0, 0.0},
                                 {t0, 0.0},
                                 {t0 + edge, tech.vdd},
                                 {t0 + period / 2, tech.vdd},
                                 {t0 + period / 2 + edge, 0.0}});
  };
  // Cycle 0: A=0 (inb_A pulses), B=1; cycle 1: A=1, B=1.
  ckt.add_vsource("vin_A", "in_A", "0", pulse_at(1));
  ckt.add_vsource("vinb_A", "inb_A", "0", pulse_at(0));
  ckt.add_vsource("vin_B", "in_B", "0",
                  spice::Waveform::pwl({{0.0, 0.0},
                                        {delay, 0.0},
                                        {delay + edge, tech.vdd},
                                        {period / 2 + delay, tech.vdd},
                                        {period / 2 + delay + edge, 0.0},
                                        {period + delay, 0.0},
                                        {period + delay + edge, tech.vdd},
                                        {1.5 * period + delay, tech.vdd},
                                        {1.5 * period + delay + edge, 0.0}}));
  ckt.add_vsource("vinb_B", "inb_B", "0", spice::Waveform::dc(0.0));

  spice::ExportOptions opt;
  opt.title = "SABL AND-NAND gate, Fig. 3 testbench (sable export)";
  opt.tran_step = 2e-12;
  opt.tran_stop = 2 * period;
  std::fputs(to_spice_deck(ckt, opt).c_str(), stdout);
  return 0;
}
