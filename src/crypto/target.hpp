// Single-S-box DPA attack target: the N = 1 case of the width-generic
// RoundTarget, kept as a thin adapter so byte-wide callers stay simple.
//
// The circuit computes the S-box only; the key addition happens at the
// stimulus (x = pt XOR key), which models the standard first-order DPA
// setting where the attacker predicts S-box output bits from plaintext and
// key guess. Encryptions run through the 64-wide bit-parallel circuit
// simulators via the underlying RoundTarget; for specs of up to 8 input
// bits the packed one-byte round state IS the plaintext byte, so the
// adapter forwards pointers without repacking.
#pragma once

#include <cstdint>

#include "crypto/round_target.hpp"

namespace sable {

class SboxTarget {
 public:
  SboxTarget(const SboxSpec& spec, LogicStyle style, const Technology& tech)
      : round_(single_sbox_round(spec, style), tech) {}

  /// Independent target over the same synthesized circuit: the (immutable)
  /// GateCircuit is shared, every piece of mutable simulator state is
  /// fresh and private to the clone (see RoundTarget::clone()).
  SboxTarget clone() const { return SboxTarget(round_.clone()); }

  /// One encryption: applies pt XOR key, returns the power sample
  /// (circuit energy plus Gaussian noise of `noise_sigma` joules).
  double trace(std::uint8_t pt, std::uint8_t key, double noise_sigma,
               Rng& rng) {
    return round_.trace(&pt, &key, noise_sigma, rng);
  }

  /// Batched encryptions, 64 per simulated cycle: writes one power sample
  /// per plaintext into `out[0..count)`. Noise is drawn from `rng` in
  /// ascending trace order, so a campaign is reproducible regardless of
  /// the internal batch width.
  void trace_batch(const std::uint8_t* pts, std::size_t count,
                   std::uint8_t key, double noise_sigma, Rng& rng,
                   double* out) {
    round_.trace_batch(pts, count, &key, noise_sigma, rng, out);
  }

  /// Restores the fresh-construction simulator state in every lane (CMOS
  /// transition history, SABL node charge), so campaigns with the same
  /// seed reproduce the same traces no matter what ran before.
  void reset_state() { round_.reset_state(); }

  /// Reference S-box output for functional checks.
  std::uint8_t reference(std::uint8_t pt, std::uint8_t key) const {
    return round_.reference(0, &pt, &key);
  }

  const GateCircuit& circuit() const { return round_.circuit(0); }
  const SboxSpec& spec() const { return round_.round().sboxes.front(); }
  LogicStyle style() const { return round_.round().style; }

 private:
  explicit SboxTarget(RoundTarget round) : round_(std::move(round)) {}

  RoundTarget round_;
};

}  // namespace sable
