#include "util/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace sable::detail {

void assert_fail(const char* cond, const char* file, int line,
                 const std::string& msg) {
  std::fprintf(stderr, "sable: assertion failed: %s\n  at %s:%d\n  %s\n", cond,
               file, line, msg.c_str());
  std::abort();
}

}  // namespace sable::detail
