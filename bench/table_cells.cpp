// Experiment E8 (extension): the full cell-library table.
//
// For every library cell and every network variant: device/dummy counts,
// evaluation depth range, discharge-resistance spread, per-cycle energy
// mean, and the NED/NSD balancedness metrics from the switch-level model.
// This is the datasheet a designer would consult when adopting the method.
#include <cstdio>

#include "cell/library.hpp"
#include "core/depth_analysis.hpp"
#include "core/resistance.hpp"
#include "power/stats.hpp"
#include "switchsim/energy.hpp"
#include "util/strings.hpp"

using namespace sable;

int main() {
  const Technology tech = Technology::generic_180nm();
  std::printf("== E8: differential cell library datasheet ==================\n");
  std::printf("%-7s %-16s %4s %6s %7s %10s %11s %8s %8s\n", "cell", "variant",
              "dev", "dummy", "depth", "R spread", "E mean", "NED", "NSD");

  for (CellFunction f : all_cell_functions()) {
    for (NetworkVariant v :
         {NetworkVariant::kGenuine, NetworkVariant::kFullyConnected,
          NetworkVariant::kEnhanced}) {
      const Cell cell = make_cell(f, v, tech);
      const DepthReport depth = analyze_evaluation_depth(cell.network);
      const ResistanceReport res = analyze_discharge_resistance(cell.network);
      const EnergyProfile profile =
          profile_gate_energy(cell.network, cell.energy_model);
      char depth_str[16];
      std::snprintf(depth_str, sizeof depth_str, "%zu..%zu", depth.min_depth,
                    depth.max_depth);
      std::printf("%-7s %-16s %4zu %6zu %7s %9.1f%% %11s %7.2f%% %7.2f%%\n",
                  to_string(f), to_string(v), cell.network.device_count(),
                  cell.network.pass_gate_device_count(), depth_str,
                  res.relative_spread * 100.0,
                  format_eng(profile.mean_energy, "J").c_str(),
                  profile.ned * 100.0, profile.nsd * 100.0);
    }
    std::printf("\n");
  }
  std::printf(
      "Reading: genuine networks have NED > 0 whenever they own internal\n"
      "nodes (the §2 memory effect); fully connected and enhanced variants\n"
      "score NED = NSD = 0 in the switch model, and enhanced additionally\n"
      "pins the depth and discharge resistance.\n");
  return 0;
}
