#include "io/manifest.hpp"

#include <bit>

#include "io/serial.hpp"

namespace sable {

void CampaignManifest::save(ByteWriter& writer) const {
  writer.u64(spec_hash);
  writer.u64(seed);
  writer.u64(num_traces);
  writer.u64(shard_size);
  writer.u64(num_shards);
  writer.f64(noise_sigma);
  writer.u64(key.size());
  writer.bytes(key.data(), key.size());
}

void CampaignManifest::load(ByteReader& reader) {
  spec_hash = reader.u64();
  seed = reader.u64();
  num_traces = reader.u64();
  shard_size = reader.u64();
  num_shards = reader.u64();
  noise_sigma = reader.f64();
  const std::uint64_t key_len = reader.checked_count(1);
  key.resize(static_cast<std::size_t>(key_len));
  reader.bytes(key.data(), key.size());
}

void require_manifest_match(const std::string& path,
                            const CampaignManifest& expected,
                            const CampaignManifest& actual) {
  const auto fail = [&](const char* field) {
    throw ManifestMismatchError(
        path, std::string("campaign manifest mismatch: ") + field +
                  " differs from the running campaign");
  };
  if (actual.spec_hash != expected.spec_hash) fail("round spec hash");
  if (actual.seed != expected.seed) fail("seed");
  if (actual.num_traces != expected.num_traces) fail("num_traces");
  if (actual.shard_size != expected.shard_size) fail("shard_size");
  if (actual.num_shards != expected.num_shards) fail("num_shards");
  // Bit-pattern comparison: NaN-safe and exact, matching how the sigma
  // enters the stream.
  if (std::bit_cast<std::uint64_t>(actual.noise_sigma) !=
      std::bit_cast<std::uint64_t>(expected.noise_sigma)) {
    fail("noise_sigma");
  }
  if (actual.key != expected.key) fail("key");
}

}  // namespace sable
