// Error handling primitives for the sable library.
//
// Construction and parsing errors are reported with exceptions derived from
// sable::Error; invariant violations in library internals use SABLE_ASSERT,
// which is active in all build types (these networks are small, the checks
// are cheap, and a silently malformed network would invalidate every
// downstream power result).
#pragma once

#include <stdexcept>
#include <string>

namespace sable {

/// Base class of all exceptions thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when textual input (expressions, netlists) cannot be parsed.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Thrown when an argument violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* cond, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

}  // namespace sable

/// Always-on invariant check. `msg` may use stream-free string concatenation.
#define SABLE_ASSERT(cond, msg)                                        \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::sable::detail::assert_fail(#cond, __FILE__, __LINE__, (msg));  \
    }                                                                  \
  } while (false)

/// Precondition check that throws InvalidArgument instead of aborting.
#define SABLE_REQUIRE(cond, msg)                       \
  do {                                                 \
    if (!(cond)) {                                     \
      throw ::sable::InvalidArgument((msg));           \
    }                                                  \
  } while (false)
