#include "dpa/attack.hpp"

#include <algorithm>
#include <cmath>

#include "power/stats.hpp"
#include "util/error.hpp"

namespace sable {

std::size_t AttackResult::rank_of(std::uint8_t key) const {
  SABLE_ASSERT(key < score.size(), "key out of range for ranking");
  std::size_t rank = 0;
  for (std::size_t g = 0; g < score.size(); ++g) {
    if (g != key && score[g] > score[key]) ++rank;
  }
  return rank;
}

namespace {

void finalize(AttackResult& result) {
  double best = -1.0;
  double second = -1.0;
  for (std::size_t g = 0; g < result.score.size(); ++g) {
    if (result.score[g] > best) {
      second = best;
      best = result.score[g];
      result.best_guess = static_cast<std::uint8_t>(g);
    } else if (result.score[g] > second) {
      second = result.score[g];
    }
  }
  result.margin = second < 0.0 ? best : best - second;
}

}  // namespace

AttackResult cpa_attack(const TraceSet& traces, const SboxSpec& spec,
                        PowerModel model, std::size_t bit) {
  SABLE_REQUIRE(traces.size() >= 2, "CPA requires at least two traces");
  const std::size_t num_guesses = std::size_t{1} << spec.in_bits;
  AttackResult result;
  result.score.resize(num_guesses, 0.0);
  std::vector<double> prediction(traces.size());
  for (std::size_t g = 0; g < num_guesses; ++g) {
    for (std::size_t t = 0; t < traces.size(); ++t) {
      prediction[t] = predict_leakage(spec, model, traces.plaintexts[t],
                                      static_cast<std::uint8_t>(g), bit);
    }
    result.score[g] = std::fabs(pearson(prediction, traces.samples));
  }
  finalize(result);
  return result;
}

MultiAttackResult cpa_attack_multisample(const MultiTraceSet& traces,
                                         const SboxSpec& spec,
                                         PowerModel model, std::size_t bit) {
  SABLE_REQUIRE(traces.width > 0 && traces.size() >= 2,
                "multisample CPA requires non-empty traces");
  MultiAttackResult result;
  result.combined.score.assign(std::size_t{1} << spec.in_bits, 0.0);
  double global_best = -1.0;
  for (std::size_t s = 0; s < traces.width; ++s) {
    const AttackResult column = cpa_attack(traces.column(s), spec, model, bit);
    for (std::size_t g = 0; g < column.score.size(); ++g) {
      result.combined.score[g] =
          std::max(result.combined.score[g], column.score[g]);
      if (column.score[g] > global_best) {
        global_best = column.score[g];
        result.best_sample = s;
      }
    }
  }
  finalize(result.combined);
  return result;
}

AttackResult dom_attack(const TraceSet& traces, const SboxSpec& spec,
                        std::size_t bit) {
  SABLE_REQUIRE(traces.size() >= 2, "DPA requires at least two traces");
  const std::size_t num_guesses = std::size_t{1} << spec.in_bits;
  AttackResult result;
  result.score.resize(num_guesses, 0.0);
  for (std::size_t g = 0; g < num_guesses; ++g) {
    double sum1 = 0.0;
    double sum0 = 0.0;
    std::size_t n1 = 0;
    std::size_t n0 = 0;
    for (std::size_t t = 0; t < traces.size(); ++t) {
      const double pred =
          predict_leakage(spec, PowerModel::kSboxOutputBit,
                          traces.plaintexts[t], static_cast<std::uint8_t>(g),
                          bit);
      if (pred > 0.5) {
        sum1 += traces.samples[t];
        ++n1;
      } else {
        sum0 += traces.samples[t];
        ++n0;
      }
    }
    if (n1 == 0 || n0 == 0) {
      result.score[g] = 0.0;
      continue;
    }
    result.score[g] = std::fabs(sum1 / static_cast<double>(n1) -
                                sum0 / static_cast<double>(n0));
  }
  finalize(result);
  return result;
}

}  // namespace sable
