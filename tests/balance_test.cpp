// Tests for differential load extraction and balancing (§2's matched-load
// requirement), ending in the security experiment: routing imbalance
// re-opens the DPA leak on fully connected gates; balancing closes it.
#include <gtest/gtest.h>

#include "balance/load_balance.hpp"
#include "cell/builder.hpp"
#include "cell/circuit_sim.hpp"
#include "crypto/sboxes.hpp"
#include "dpa/attack.hpp"
#include "expr/factoring.hpp"
#include "expr/parser.hpp"
#include "power/trace.hpp"
#include "util/rng.hpp"

namespace sable {
namespace {

const Technology kTech = Technology::generic_180nm();
const SizingPlan kSizing = SizingPlan::defaults(kTech);

GateCircuit tree_for(const char* text, std::size_t n) {
  VarTable vars;
  const ExprPtr f = parse_expression(text, vars);
  return build_from_expressions({f}, n, NetworkVariant::kFullyConnected,
                                kTech);
}

TEST(RailLoadTest, SymmetricFanoutIsBalanced) {
  // out = (A.B) + C: the AND gate's output feeds one OR input positively.
  // FC cells present equal true/false input caps (one device per polarity
  // per input), so the extracted loads are balanced.
  const GateCircuit circuit = tree_for("A.B + C", 3);
  const auto loads = extract_rail_loads(circuit, kTech, kSizing);
  for (const auto& load : loads) {
    EXPECT_NEAR(load.imbalance(), 0.0, 1e-21);
  }
}

TEST(RailLoadTest, GenuineCellsLoadRailsAsymmetrically) {
  // Genuine AND2: the A input drives one device on the true rail (series
  // branch) and one on the false rail — still one each — but genuine AND3
  // drives A once on each side too; asymmetric cells arise with repeated
  // literals: XOR2 genuine has 2 devices per polarity. Use a MUX tree where
  // the select feeds multiple gates with mixed polarity instead.
  VarTable vars;
  const ExprPtr f = parse_expression("A.B + A'.C", vars);
  const GateCircuit circuit =
      build_from_expressions({f}, 3, NetworkVariant::kFullyConnected, kTech);
  const auto loads = extract_rail_loads(circuit, kTech, kSizing);
  // Signal A feeds one gate positively and one negated: each connection is
  // itself rail-symmetric (FC cells), so A stays balanced — the point is
  // that extraction accounts the swap correctly rather than double-counting
  // one rail.
  EXPECT_NEAR(loads[0].imbalance(), 0.0, 1e-21);
  EXPECT_GT(loads[0].true_rail, 0.0);
}

TEST(RailLoadTest, RoutingCapacitanceCreatesImbalance) {
  const GateCircuit circuit = tree_for("A.B + C", 3);
  auto loads = extract_rail_loads(circuit, kTech, kSizing);
  Rng rng(99);
  add_routing_capacitance(loads, 2e-15, 1e-15, rng);
  double worst = 0.0;
  for (const auto& load : loads) {
    worst = std::max(worst, std::abs(load.imbalance()));
  }
  EXPECT_GT(worst, 1e-16);
}

TEST(BalanceTest, BalancingZeroesImbalanceAndReportsCost) {
  const GateCircuit circuit = tree_for("A.(B + C.D) + B'.D", 4);
  auto loads = extract_rail_loads(circuit, kTech, kSizing);
  Rng rng(7);
  add_routing_capacitance(loads, 2e-15, 1e-15, rng);
  const BalanceReport report = balance_rail_loads(loads);
  EXPECT_GT(report.max_abs_imbalance, 0.0);
  EXPECT_GT(report.compensation_added, 0.0);
  for (const auto& load : loads) {
    EXPECT_NEAR(load.imbalance(), 0.0, 1e-21);
  }
}

TEST(BalanceTest, UnbalancedCircuitEnergyIsDataDependent) {
  const GateCircuit circuit = tree_for("A.(B + C.D) + B'.D", 4);
  auto loads = extract_rail_loads(circuit, kTech, kSizing);
  Rng rng(21);
  add_routing_capacitance(loads, 2e-15, 1e-15, rng);

  DifferentialCircuitSim sim(circuit,
                             instance_models_with_loads(circuit, loads));
  double lo = 1e9;
  double hi = 0.0;
  for (std::uint64_t a = 0; a < 16; ++a) {
    const double e = sim.cycle(a).energy;
    lo = std::min(lo, e);
    hi = std::max(hi, e);
  }
  EXPECT_GT(hi - lo, 0.0) << "unbalanced rails must leak";

  // After balancing, energy is constant again.
  balance_rail_loads(loads);
  DifferentialCircuitSim balanced(circuit,
                                  instance_models_with_loads(circuit, loads));
  const double e0 = balanced.cycle(0).energy;
  for (std::uint64_t a = 1; a < 16; ++a) {
    EXPECT_DOUBLE_EQ(balanced.cycle(a).energy, e0) << a;
  }
}

TEST(BalanceTest, UnbalancedRoutingReopensDpaLeak) {
  // Full security experiment on the PRESENT S-box in FC SABL: ideal rails
  // resist; unbalanced routing leaks; balanced routing resists again.
  const SboxSpec spec = present_spec();
  std::vector<ExprPtr> bits;
  for (std::size_t b = 0; b < spec.out_bits; ++b) {
    bits.push_back(factored_form(sbox_output_bit(spec, b)));
  }
  const GateCircuit circuit = build_from_expressions(
      bits, spec.in_bits, NetworkVariant::kFullyConnected, kTech);

  // The imbalance leak is a weighted combination of output bits, so the
  // attacker tries several models (HW plus every single bit) and keeps the
  // strongest correlation at the correct key. Leakage is judged against the
  // noise floor rather than by rank, which makes the criterion robust.
  const std::uint8_t key = 0x5;
  auto best_key_rho = [&](const std::vector<GateEnergyModel>& models) {
    DifferentialCircuitSim sim(circuit, models);
    Rng rng(0xCAFE);
    TraceSet traces;
    for (std::size_t i = 0; i < 3000; ++i) {
      const auto pt = static_cast<std::uint8_t>(rng.below(16));
      const auto x = static_cast<std::uint8_t>(pt ^ key);
      traces.add(pt, sim.cycle(x).energy + 2e-16 * rng.gaussian());
    }
    double best = cpa_attack(traces, spec, PowerModel::kHammingWeight)
                      .score[key];
    for (std::size_t bit = 0; bit < spec.out_bits; ++bit) {
      best = std::max(
          best,
          cpa_attack(traces, spec, PowerModel::kSboxOutputBit, bit)
              .score[key]);
    }
    return best;
  };

  auto loads = extract_rail_loads(circuit, kTech, kSizing);
  Rng rng(31337);
  add_routing_capacitance(loads, 3e-15, 2e-15, rng);
  const double unbalanced_rho =
      best_key_rho(instance_models_with_loads(circuit, loads));
  balance_rail_loads(loads);
  const double balanced_rho =
      best_key_rho(instance_models_with_loads(circuit, loads));

  EXPECT_GT(unbalanced_rho, 0.15) << "routing imbalance should leak";
  EXPECT_LT(balanced_rho, 0.08) << "balanced rails should be noise-level";
  EXPECT_GT(unbalanced_rho, 3.0 * balanced_rho);
}

}  // namespace
}  // namespace sable
