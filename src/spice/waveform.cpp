#include "spice/waveform.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace sable::spice {

const std::vector<double>& TranResult::v(const std::string& node) const {
  for (std::size_t n = 0; n < node_names.size(); ++n) {
    if (node_names[n] == node) return voltage[n];
  }
  throw InvalidArgument("no such node in results: " + node);
}

const std::vector<double>& TranResult::i(const std::string& source) const {
  for (std::size_t s = 0; s < source_names.size(); ++s) {
    if (source_names[s] == source) return branch_current[s];
  }
  throw InvalidArgument("no such source in results: " + source);
}

std::size_t TranResult::sample_at(double t) const {
  const auto it = std::lower_bound(time.begin(), time.end(), t);
  if (it == time.end()) return time.size() - 1;
  return static_cast<std::size_t>(it - time.begin());
}

}  // namespace sable::spice
