#include "switchsim/cycle_sim.hpp"

#include "netlist/conduction.hpp"
#include "util/error.hpp"

namespace sable {

SablGateSim::SablGateSim(const DpdnNetwork& net, GateEnergyModel model)
    : net_(net), model_(std::move(model)) {
  SABLE_ASSERT(model_.node_cap.size() == net_.node_count(),
               "gate model capacitance table size mismatch");
  charged_.assign(net_.node_count(), true);
}

double SablGateSim::cycle(std::uint64_t assignment) {
  const std::vector<bool> connected = connected_to_external(net_, assignment);

  // Evaluation: connected nodes discharge to ground. (Whether they were
  // charged or floating-low, they end at 0; the charge flows to ground, not
  // from the supply.)
  for (NodeId n = 0; n < net_.node_count(); ++n) {
    if (connected[n]) charged_[n] = false;
  }

  // Precharge with input overlap: the same connected set recharges from the
  // supply. Supply charge = sum C * VDD over recharged nodes; floating
  // nodes stay at their held level and cost nothing.
  double energy = model_.constant_energy;
  for (NodeId n = 0; n < net_.node_count(); ++n) {
    if (!connected[n]) continue;
    energy += model_.node_cap[n] * model_.vdd * model_.vdd;
    charged_[n] = true;
  }

  // The firing output rail charges its extra (routing) load: the true rail
  // when f = 1, the false rail otherwise. Balanced extras cancel the data
  // dependence; mismatched ones leak (§2).
  if (model_.out_true_extra != 0.0 || model_.out_false_extra != 0.0) {
    const bool f = conducts(net_, assignment, DpdnNetwork::kNodeX,
                            DpdnNetwork::kNodeZ);
    energy += (f ? model_.out_true_extra : model_.out_false_extra) *
              model_.vdd * model_.vdd;
  }
  return energy;
}

void SablGateSim::reset(bool charged) {
  charged_.assign(net_.node_count(), charged);
}

}  // namespace sable
