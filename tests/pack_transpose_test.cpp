// Property suite for the bit-transpose lane packing (switchsim/cycle_sim):
// pack_lane_words — 8×8 byte-block transposes for narrow assignments, full
// 64×64 Hacker's Delight transposes for wide ones, and the single-lane
// fast path — must be bit-identical to pack_lane_words_gather, the
// independently-simple per-bit reference, at every lane width, variable
// count and ragged lane count. Wide words are inspected only through the
// memcpy-based lane_chunks (this TU is compiled for the base architecture;
// see util/lane_word.hpp for the multi-ISA rules) and their tests skip on
// CPUs without the matching ISA.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "switchsim/cycle_sim.hpp"
#include "util/cpu_dispatch.hpp"
#include "util/lane_word.hpp"
#include "util/rng.hpp"

namespace sable {
namespace {

template <typename W>
bool cpu_can_run() {
  constexpr std::size_t kLanes = LaneTraits<W>::kLanes;
  if (kLanes <= 128) return true;
  if (kLanes == 256) return cpu_features().avx2;
  return cpu_features().avx512f;
}

// Ragged and aligned lane counts worth probing, clipped to the word:
// single lane, partial / exact / overflowing first chunk, partial second
// chunk, full word.
template <typename W>
std::vector<std::size_t> interesting_counts() {
  constexpr std::size_t kLanes = LaneTraits<W>::kLanes;
  std::vector<std::size_t> counts;
  for (std::size_t c : {std::size_t{1}, std::size_t{7}, std::size_t{63},
                        std::size_t{64}, std::size_t{65}, std::size_t{127},
                        std::size_t{128}, std::size_t{129}, kLanes - 1,
                        kLanes}) {
    if (c >= 1 && c <= kLanes &&
        (counts.empty() || counts.back() != c)) {
      counts.push_back(c);
    }
  }
  return counts;
}

template <typename W>
void expect_words_equal(const std::vector<W>& got, const std::vector<W>& ref,
                        const char* what, std::size_t count) {
  using T = LaneTraits<W>;
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t v = 0; v < ref.size(); ++v) {
    std::uint64_t g[T::kChunks], r[T::kChunks];
    lane_chunks(got[v], g);
    lane_chunks(ref[v], r);
    for (std::size_t j = 0; j < T::kChunks; ++j) {
      EXPECT_EQ(g[j], r[j]) << what << " count " << count << " var " << v
                            << " chunk " << j;
    }
  }
}

template <typename W>
struct PackTransposeTest : ::testing::Test {};

using LaneWordTypes = ::testing::Types<std::uint64_t, Word128
#if SABLE_HAVE_WORD256
                                       ,
                                       Word256
#endif
#if SABLE_HAVE_WORD512
                                       ,
                                       Word512
#endif
                                       >;
TYPED_TEST_SUITE(PackTransposeTest, LaneWordTypes);

TYPED_TEST(PackTransposeTest, MatchesGatherAcrossVarsCountsAndRandomBits) {
  using W = TypeParam;
  if (!cpu_can_run<W>()) GTEST_SKIP() << "CPU lacks the ISA for this width";
  Rng rng(0x7249);
  // 1 exercises the single-lane fast path only via count==1; 4/5/8 the
  // 8×8 byte-block path; 9/17/33/64 the full 64×64 transpose path.
  for (std::size_t vars : {std::size_t{1}, std::size_t{4}, std::size_t{5},
                           std::size_t{8}, std::size_t{9}, std::size_t{17},
                           std::size_t{33}, std::size_t{64}}) {
    for (std::size_t count : interesting_counts<W>()) {
      for (int round = 0; round < 4; ++round) {
        std::vector<std::uint64_t> assignments(count);
        for (auto& a : assignments) a = rng.next();
        std::vector<W> got(vars), ref(vars);
        pack_lane_words(assignments.data(), count, got);
        pack_lane_words_gather(assignments.data(), count, ref);
        expect_words_equal(got, ref, "u64 source", count);
        if (::testing::Test::HasFailure()) return;  // one counterexample
      }
    }
  }
}

TYPED_TEST(PackTransposeTest, ByteSourceMatchesWordSourceForNarrowVars) {
  using W = TypeParam;
  if (!cpu_can_run<W>()) GTEST_SKIP() << "CPU lacks the ISA for this width";
  Rng rng(0xB17E);
  for (std::size_t vars :
       {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    for (std::size_t count : interesting_counts<W>()) {
      std::vector<std::uint64_t> assignments(count);
      std::vector<std::uint8_t> bytes(count);
      for (std::size_t lane = 0; lane < count; ++lane) {
        bytes[lane] = static_cast<std::uint8_t>(rng.next());
        assignments[lane] = bytes[lane];
      }
      std::vector<W> from_bytes(vars), from_words(vars);
      pack_lane_words(bytes.data(), count, from_bytes);
      pack_lane_words(assignments.data(), count, from_words);
      expect_words_equal(from_bytes, from_words, "byte source", count);
    }
  }
}

// The vectorized transpose kernels — AVX2 delta-swap, AVX-512 masked
// shifts, BW vpmovb2m and GFNI vgf2p8affineqb where the CPU has them —
// are picked per pack call from the active dispatch tier, so capping the
// tier on one machine walks every kernel this binary can run. Each tier
// is only a faster route to the same transpose: words packed under any
// cap must be bit-identical to the portable tier's, for both the u64 wide
// path and the byte-source narrow path.
TYPED_TEST(PackTransposeTest, DispatchTiersPackBitIdenticalWords) {
  using W = TypeParam;
  if (!cpu_can_run<W>()) GTEST_SKIP() << "CPU lacks the ISA for this width";
  Rng rng(0x71E5);
  // 4/8 drive the byte-plane kernels, 17/64 the 64×64 transpose kernels.
  for (std::size_t vars : {std::size_t{4}, std::size_t{8}, std::size_t{17},
                           std::size_t{64}}) {
    for (std::size_t count : interesting_counts<W>()) {
      std::vector<std::uint64_t> assignments(count);
      std::vector<std::uint8_t> bytes(count);
      for (std::size_t lane = 0; lane < count; ++lane) {
        assignments[lane] = rng.next();
        bytes[lane] = static_cast<std::uint8_t>(assignments[lane]);
      }
      std::vector<W> portable_words(vars), portable_bytes(vars);
      {
        ScopedDispatchTierCap cap(DispatchTier::kPortable);
        pack_lane_words(assignments.data(), count, portable_words);
        if (vars <= 8) pack_lane_words(bytes.data(), count, portable_bytes);
      }
      // The portable tier itself must match the per-bit gather reference…
      std::vector<W> ref(vars);
      pack_lane_words_gather(assignments.data(), count, ref);
      expect_words_equal(portable_words, ref, "portable tier", count);
      // …and every higher tier must match the portable tier, bit for bit.
      for (DispatchTier tier : {DispatchTier::kAvx2, DispatchTier::kAvx512}) {
        ScopedDispatchTierCap cap(tier);
        std::vector<W> got(vars);
        pack_lane_words(assignments.data(), count, got);
        expect_words_equal(got, portable_words, to_string(tier), count);
        if (vars <= 8) {
          std::vector<W> got_bytes(vars);
          pack_lane_words(bytes.data(), count, got_bytes);
          expect_words_equal(got_bytes, portable_bytes, to_string(tier),
                             count);
        }
      }
      if (::testing::Test::HasFailure()) return;  // one counterexample
    }
  }
}

// Dense corner patterns the random sweep is unlikely to hit: all-ones
// (every transpose mask line saturated) and single-bit diagonals (each bit
// must land in exactly one output position).
TYPED_TEST(PackTransposeTest, SaturatedAndDiagonalPatterns) {
  using W = TypeParam;
  using T = LaneTraits<W>;
  if (!cpu_can_run<W>()) GTEST_SKIP() << "CPU lacks the ISA for this width";
  const std::size_t count = T::kLanes;
  std::vector<std::uint64_t> ones(count, ~std::uint64_t{0});
  std::vector<std::uint64_t> diagonal(count);
  for (std::size_t lane = 0; lane < count; ++lane) {
    diagonal[lane] = std::uint64_t{1} << (lane % 64);
  }
  for (const auto* pattern : {&ones, &diagonal}) {
    for (std::size_t vars : {std::size_t{8}, std::size_t{64}}) {
      std::vector<W> ref(vars);
      pack_lane_words_gather(pattern->data(), count, ref);
      for (DispatchTier tier : {DispatchTier::kPortable, DispatchTier::kAvx2,
                                DispatchTier::kAvx512}) {
        ScopedDispatchTierCap cap(tier);
        std::vector<W> got(vars);
        pack_lane_words(pattern->data(), count, got);
        expect_words_equal(got, ref, to_string(tier), count);
      }
    }
  }
}

}  // namespace
}  // namespace sable
