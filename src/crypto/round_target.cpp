#include "crypto/round_target.hpp"

#include <algorithm>

#include "crypto/round_target_impl.hpp"
#include "util/error.hpp"

namespace sable {

const char* to_string(LogicStyle style) {
  switch (style) {
    case LogicStyle::kStaticCmos:
      return "static-CMOS";
    case LogicStyle::kSablGenuine:
      return "SABL-genuine";
    case LogicStyle::kSablFullyConnected:
      return "SABL-fully-connected";
    case LogicStyle::kSablEnhanced:
      return "SABL-enhanced";
    case LogicStyle::kWddlBalanced:
      return "WDDL-balanced";
    case LogicStyle::kWddlMismatched:
      return "WDDL-5%-mismatch";
  }
  SABLE_ASSERT(false, "unreachable logic style");
}

namespace {

// The bit-extraction counterpart (round_target_detail::extract_bits) lives
// in round_target_impl.hpp where the packing templates need it; depositing
// is only done by the non-template RoundSpec methods here.
void deposit_bits(std::uint8_t* state, std::size_t offset, std::size_t bits,
                  std::size_t value) {
  for (std::size_t b = 0; b < bits; ++b) {
    const std::size_t bit = offset + b;
    const std::uint8_t mask = static_cast<std::uint8_t>(1u << (bit & 7));
    if ((value >> b) & 1u) {
      state[bit >> 3] |= mask;
    } else {
      state[bit >> 3] &= static_cast<std::uint8_t>(~mask);
    }
  }
}

}  // namespace

// ---- RoundSpec ------------------------------------------------------------

std::size_t RoundSpec::state_bits() const {
  std::size_t bits = 0;
  for (const SboxSpec& spec : sboxes) bits += spec.in_bits;
  return bits;
}

std::size_t RoundSpec::bit_offset(std::size_t index) const {
  SABLE_REQUIRE(index < sboxes.size(), "S-box index out of range");
  std::size_t offset = 0;
  for (std::size_t i = 0; i < index; ++i) offset += sboxes[i].in_bits;
  return offset;
}

std::size_t RoundSpec::sub_word(const std::uint8_t* state,
                                std::size_t index) const {
  return round_target_detail::extract_bits(state, bit_offset(index),
                                           sboxes[index].in_bits);
}

void RoundSpec::set_sub_word(std::uint8_t* state, std::size_t index,
                             std::size_t value) const {
  const std::size_t bits = sboxes[index].in_bits;
  SABLE_REQUIRE(value < (std::size_t{1} << bits),
                "sub-word exceeds the instance's input width");
  deposit_bits(state, bit_offset(index), bits, value);
}

void RoundSpec::sub_words(const std::uint8_t* states, std::size_t count,
                          std::size_t index, std::uint8_t* out) const {
  const std::size_t offset = bit_offset(index);
  const std::size_t bits = sboxes[index].in_bits;
  const std::size_t stride = state_bytes();
  for (std::size_t t = 0; t < count; ++t) {
    out[t] = static_cast<std::uint8_t>(
        round_target_detail::extract_bits(states + t * stride, offset, bits));
  }
}

std::vector<std::uint8_t> RoundSpec::pack_subkeys(
    const std::vector<std::size_t>& subkeys) const {
  SABLE_REQUIRE(subkeys.size() == sboxes.size(),
                "pack_subkeys needs one subkey per S-box instance");
  std::vector<std::uint8_t> state(state_bytes(), 0);
  for (std::size_t i = 0; i < subkeys.size(); ++i) {
    set_sub_word(state.data(), i, subkeys[i]);
  }
  return state;
}

void RoundSpec::fill_random_states(Rng& rng, std::size_t count,
                                   std::uint8_t* states) const {
  const std::size_t stride = state_bytes();
  std::fill(states, states + count * stride, std::uint8_t{0});
  // Per-instance placement, hoisted out of the state loop. Sub-words that
  // sit inside one byte (all the built-in layouts) deposit with a single
  // OR; only byte-straddling instances pay the per-bit deposit.
  struct Placement {
    std::uint64_t range;
    std::size_t byte;
    unsigned shift;
    std::size_t offset;
    std::size_t bits;
    bool in_byte;
  };
  std::vector<Placement> places;
  places.reserve(sboxes.size());
  std::size_t offset = 0;
  for (const SboxSpec& spec : sboxes) {
    places.push_back({std::uint64_t{1} << spec.in_bits, offset >> 3,
                      static_cast<unsigned>(offset & 7), offset,
                      spec.in_bits, (offset & 7) + spec.in_bits <= 8});
    offset += spec.in_bits;
  }
  for (std::size_t t = 0; t < count; ++t) {
    std::uint8_t* state = states + t * stride;
    for (const Placement& p : places) {
      const std::uint64_t value = rng.below(p.range);
      if (p.in_byte) {
        state[p.byte] |= static_cast<std::uint8_t>(value << p.shift);
      } else {
        deposit_bits(state, p.offset, p.bits, value);
      }
    }
  }
}

std::uint64_t round_spec_hash(const RoundSpec& round) {
  // FNV-1a over the functional fields only. Names stay out: two rounds
  // whose instances compute the same tables in the same style generate
  // identical traces, and the manifest check should agree.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001B3ULL;
    }
  };
  mix(static_cast<std::uint64_t>(round.style));
  mix(round.num_sboxes());
  for (const SboxSpec& spec : round.sboxes) {
    mix(spec.in_bits);
    mix(spec.out_bits);
    mix(spec.table.size());
    for (std::uint8_t entry : spec.table) {
      h ^= entry;
      h *= 0x100000001B3ULL;
    }
  }
  return h;
}

RoundSpec single_sbox_round(const SboxSpec& spec, LogicStyle style) {
  RoundSpec round;
  round.sboxes = {spec};
  round.style = style;
  return round;
}

RoundSpec present_round(std::size_t num_sboxes, LogicStyle style) {
  RoundSpec round;
  round.sboxes.assign(num_sboxes, present_spec());
  round.style = style;
  return round;
}

RoundSpec aes_subbytes_round(std::size_t num_sboxes, LogicStyle style) {
  RoundSpec round;
  round.sboxes.assign(num_sboxes, aes_spec());
  round.style = style;
  return round;
}

// ---- RoundTargetT ---------------------------------------------------------
//
// The member templates live in crypto/round_target_impl.hpp; this TU
// instantiates the portable lane words only. Word256/Word512 are
// instantiated by the per-ISA TUs under src/simd/ so their kernels carry
// the right target attributes in a runtime-dispatched binary.

SABLE_FOR_EACH_PORTABLE_LANE_WORD(SABLE_INSTANTIATE_ROUND_TARGET)
SABLE_FOR_EACH_PORTABLE_LANE_WORD(SABLE_INSTANTIATE_WITH_LANE_WIDTH)

}  // namespace sable
