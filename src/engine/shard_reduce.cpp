#include "engine/shard_reduce.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

#include "engine/worker_pool.hpp"
#include "util/error.hpp"

namespace sable {

void reduce_and_finalize_distinguishers(
    std::span<Distinguisher* const> distinguishers, ShardStates& states,
    WorkerPool& workers, std::size_t threads) {
  SABLE_REQUIRE(states.size() == distinguishers.size() && !states.empty(),
                "shard-state matrix must match the distinguisher list");
  const std::size_t num_shards = states[0].size();
  SABLE_REQUIRE(num_shards > 0, "reduction needs at least one shard");
  for (std::size_t d = 0; d < states.size(); ++d) {
    SABLE_REQUIRE(states[d].size() == num_shards,
                  "shard-state matrix must be rectangular");
    const std::size_t missing = static_cast<std::size_t>(
        std::count(states[d].begin(), states[d].end(), nullptr));
    SABLE_REQUIRE(missing == 0,
                  "cannot reduce a partially covered campaign (" +
                      std::to_string(missing) + " shard states missing); "
                      "merge every partial state first");
  }

  // Ordered distinguishers (MTD prefix semantics) keep the strict serial
  // left fold in canonical shard order. Unordered ones reduce through the
  // fixed-shape binary tree — the exact pairing merge_shard_tree defines
  // — but with each round's merges spread over the parked workers: within
  // a round every (d, i) <- (d, i + stride) merge touches disjoint
  // accumulators, so the rounds parallelize freely while the pairing
  // (hence the result, bit for bit) stays that of the serial tree.
  std::vector<std::size_t> unordered;
  for (std::size_t d = 0; d < distinguishers.size(); ++d) {
    if (distinguishers[d]->ordered()) {
      for (std::size_t s = 1; s < num_shards; ++s) {
        states[d][0]->merge(*states[d][s]);
      }
    } else if (num_shards > 1) {
      unordered.push_back(d);
    }
  }
  if (!unordered.empty()) {
    std::vector<std::size_t> lefts;  // the round's merge targets i
    for (std::size_t stride = 1; stride < num_shards; stride *= 2) {
      lefts.clear();
      for (std::size_t i = 0; i + stride < num_shards; i += 2 * stride) {
        lefts.push_back(i);
      }
      const std::size_t merges = unordered.size() * lefts.size();
      const std::size_t merge_threads = std::min(threads, merges);
      if (merge_threads <= 1) {
        for (std::size_t d : unordered) {
          for (std::size_t i : lefts) {
            states[d][i]->merge(*states[d][i + stride]);
          }
        }
      } else {
        std::atomic<std::size_t> next{0};
        workers.run(merge_threads, [&](std::size_t) {
          for (std::size_t k = next.fetch_add(1); k < merges;
               k = next.fetch_add(1)) {
            const std::size_t d = unordered[k / lefts.size()];
            const std::size_t i = lefts[k % lefts.size()];
            states[d][i]->merge(*states[d][i + stride]);
          }
        });
      }
    }
  }
  for (std::size_t d = 0; d < distinguishers.size(); ++d) {
    distinguishers[d]->finalize(*states[d][0]);
  }
}

}  // namespace sable
