// "Genuine" differential pull-down network construction (the baseline the
// paper improves on, Fig. 2 left).
//
// The genuine network implements f between X and Z and its complement f'
// between Y and Z as two independent series-parallel transistor networks,
// following the traditional mapping: AND = series, OR = parallel [Rabaey].
// Such networks minimize device count and stack height but leave internal
// nodes floating for some inputs — the memory effect of §2.
#pragma once

#include "expr/expression.hpp"
#include "netlist/network.hpp"

namespace sable {

/// Builds the genuine DPDN of `f` over `num_vars` inputs.
/// `f` must be in negation-normal form and non-constant; the false branch is
/// built from the NNF complement of `f` (its dual network).
/// Throws InvalidArgument on constant or non-NNF input.
DpdnNetwork build_genuine_dpdn(const ExprPtr& f, std::size_t num_vars);

/// Emits the series-parallel network of NNF expression `e` between `top` and
/// `bottom` into `net` (AND = series via fresh internal nodes, OR =
/// parallel). Exposed for the §4.2 transformer tests and custom assemblies.
void emit_series_parallel(DpdnNetwork& net, const ExprPtr& e, NodeId top,
                          NodeId bottom);

}  // namespace sable
