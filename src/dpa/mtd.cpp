#include "dpa/mtd.hpp"

#include "util/error.hpp"

namespace sable {

MtdResult measurements_to_disclosure(
    const TraceSet& traces, std::uint8_t correct_key,
    const std::vector<std::size_t>& checkpoints,
    const std::function<AttackResult(const TraceSet&)>& attack) {
  MtdResult result;
  for (std::size_t n : checkpoints) {
    if (n > traces.size() || n < 2) continue;
    TraceSet prefix;
    prefix.plaintexts.assign(traces.plaintexts.begin(),
                             traces.plaintexts.begin() + n);
    prefix.samples.assign(traces.samples.begin(), traces.samples.begin() + n);
    const AttackResult r = attack(prefix);
    result.rank_history.emplace_back(n, r.rank_of(correct_key));
  }
  // MTD: first checkpoint from which the rank stays 0 to the end.
  for (std::size_t i = 0; i < result.rank_history.size(); ++i) {
    bool stable = true;
    for (std::size_t j = i; j < result.rank_history.size(); ++j) {
      if (result.rank_history[j].second != 0) {
        stable = false;
        break;
      }
    }
    if (stable) {
      result.disclosed = true;
      result.mtd = result.rank_history[i].first;
      break;
    }
  }
  return result;
}

std::vector<std::size_t> default_checkpoints(std::size_t max_traces) {
  std::vector<std::size_t> pts;
  for (std::size_t n = 16; n < max_traces; n = n + (n / 2)) {
    pts.push_back(n);
  }
  pts.push_back(max_traces);
  return pts;
}

}  // namespace sable
