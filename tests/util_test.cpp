// Tests for utility primitives: RNG determinism and distributions, string
// helpers, and error types.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace sable {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BelowIsInRangeAndCoversValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(StringsTest, JoinAndSplit) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  hello \t"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringsTest, FormatEng) {
  EXPECT_EQ(format_eng(19.32e-15, "F"), "19.32fF");
  EXPECT_EQ(format_eng(0.0, "A"), "0A");
  EXPECT_EQ(format_eng(1.8, "V"), "1.8V");
  EXPECT_EQ(format_eng(624.8e-6, "A"), "624.8uA");
}

TEST(ErrorTest, RequireThrowsInvalidArgument) {
  EXPECT_THROW(
      [] { SABLE_REQUIRE(false, "precondition failed"); }(),
      InvalidArgument);
  EXPECT_NO_THROW([] { SABLE_REQUIRE(true, "fine"); }());
}

TEST(ErrorTest, HierarchyIsCatchable) {
  try {
    throw ParseError("bad token");
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("bad token"), std::string::npos);
  }
}

}  // namespace
}  // namespace sable
