// Per-gate energy profiling and the standard balancedness metrics.
//
// NED (normalized energy deviation) = (Emax - Emin) / Emax and
// NSD (normalized standard deviation) = sigma_E / mean_E are the figures of
// merit used throughout the SABL literature to quantify how data-dependent
// a gate's consumption is; a perfectly constant-power gate scores 0 on both.
#pragma once

#include <cstdint>
#include <vector>

#include "switchsim/cycle_sim.hpp"

namespace sable {

struct EnergyProfile {
  /// Energy per complementary input assignment [J], index = assignment.
  std::vector<double> energy_per_input;
  double min_energy = 0.0;
  double max_energy = 0.0;
  double mean_energy = 0.0;
  double stddev = 0.0;
  /// (Emax - Emin) / Emax.
  double ned = 0.0;
  /// stddev / mean.
  double nsd = 0.0;
};

/// Exhaustive per-input energy profile of one gate. Each input is measured
/// in steady state (a warm-up cycle with the same input precedes the
/// measured cycle, so held charge on floating nodes is accounted for).
EnergyProfile profile_gate_energy(const DpdnNetwork& net,
                                  const GateEnergyModel& model);

/// Energy trace over an input sequence, starting from all-charged state.
std::vector<double> energy_trace(const DpdnNetwork& net,
                                 const GateEnergyModel& model,
                                 const std::vector<std::uint64_t>& inputs);

}  // namespace sable
