#include "switchsim/energy.hpp"

#include <algorithm>
#include <cmath>

namespace sable {

EnergyProfile profile_gate_energy(const DpdnNetwork& net,
                                  const GateEnergyModel& model) {
  EnergyProfile profile;
  const std::size_t rows = std::size_t{1} << net.num_vars();
  profile.energy_per_input.reserve(rows);
  for (std::size_t a = 0; a < rows; ++a) {
    SablGateSim sim(net, model);
    sim.cycle(a);  // warm-up: settle floating-node state for this input
    profile.energy_per_input.push_back(sim.cycle(a));
  }
  const auto [mn, mx] = std::minmax_element(profile.energy_per_input.begin(),
                                            profile.energy_per_input.end());
  profile.min_energy = *mn;
  profile.max_energy = *mx;
  double sum = 0.0;
  for (double e : profile.energy_per_input) sum += e;
  profile.mean_energy = sum / static_cast<double>(rows);
  double var = 0.0;
  for (double e : profile.energy_per_input) {
    var += (e - profile.mean_energy) * (e - profile.mean_energy);
  }
  profile.stddev = std::sqrt(var / static_cast<double>(rows));
  profile.ned = profile.max_energy > 0.0
                    ? (profile.max_energy - profile.min_energy) /
                          profile.max_energy
                    : 0.0;
  profile.nsd =
      profile.mean_energy > 0.0 ? profile.stddev / profile.mean_energy : 0.0;
  return profile;
}

std::vector<double> energy_trace(const DpdnNetwork& net,
                                 const GateEnergyModel& model,
                                 const std::vector<std::uint64_t>& inputs) {
  SablGateSim sim(net, model);
  std::vector<double> trace;
  trace.reserve(inputs.size());
  for (std::uint64_t a : inputs) trace.push_back(sim.cycle(a));
  return trace;
}

}  // namespace sable
