// Series-parallel structure extraction from transistor networks.
//
// The §4.2 transformation starts from a *schematic*: a genuine differential
// network whose two branches are series-parallel (the traditional CVSL
// construction). This module recovers the expression tree of such a branch
// by repeated series/parallel reduction, preserving the top-to-bottom order
// of series chains (AND operand order = device order from the output node
// towards Z), so that the re-synthesized fully connected network places
// devices exactly where the paper's drawings do.
#pragma once

#include <cstddef>
#include <vector>

#include "expr/expression.hpp"
#include "netlist/network.hpp"

namespace sable {

/// Device indices of the two branches of a genuine differential network.
struct BranchPartition {
  std::vector<std::size_t> x_branch;
  std::vector<std::size_t> y_branch;
};

/// Splits the devices of a *genuine* network into the X–Z and Y–Z branches.
/// Throws InvalidArgument if a device cannot be attributed to exactly one
/// branch (e.g. the branches share an internal node, as fully connected
/// networks do by design).
BranchPartition partition_branches(const DpdnNetwork& net);

/// Recovers the series-parallel expression implemented by the given devices
/// between `top` and Z. Throws InvalidArgument when the subnetwork is not
/// two-terminal series-parallel.
ExprPtr extract_sp_expression(const DpdnNetwork& net,
                              const std::vector<std::size_t>& device_indices,
                              NodeId top);

}  // namespace sable
