#include "netlist/sp_tree.hpp"

#include <algorithm>
#include <map>

#include "netlist/union_find.hpp"
#include "util/error.hpp"

namespace sable {

namespace {

// Reverses the series (top-to-bottom) orientation of an SP expression:
// AND operand order flips, OR operand order is kept (parallel branches are
// unordered), literals are unchanged.
ExprPtr reverse_series(const ExprPtr& e) {
  if (e->is_literal()) return e;
  std::vector<ExprPtr> ops;
  ops.reserve(e->operands().size());
  if (e->kind() == ExprKind::kAnd) {
    for (auto it = e->operands().rbegin(); it != e->operands().rend(); ++it) {
      ops.push_back(reverse_series(*it));
    }
    return Expr::conj(std::move(ops));
  }
  SABLE_ASSERT(e->kind() == ExprKind::kOr, "SP expression must be AND/OR/lit");
  for (const auto& op : e->operands()) ops.push_back(reverse_series(op));
  return Expr::disj(std::move(ops));
}

struct Edge {
  NodeId u;  // expression reads top-down from u ...
  NodeId v;  // ... to v
  ExprPtr expr;
  bool alive = true;
};

}  // namespace

BranchPartition partition_branches(const DpdnNetwork& net) {
  // Internal nodes are grouped by devices connecting internal-internal;
  // each group is then attributed to the X or Y side by adjacency.
  UnionFind groups(net.node_count());
  for (const auto& d : net.devices()) {
    if (!net.is_external(d.a) && !net.is_external(d.b)) {
      groups.unite(d.a, d.b);
    }
  }
  enum class Side : std::uint8_t { kNone, kX, kY, kBoth };
  std::map<std::size_t, Side> side;
  auto mark = [&](NodeId internal, Side s) {
    const std::size_t g = groups.find(internal);
    auto [it, inserted] = side.try_emplace(g, s);
    if (!inserted && it->second != s) it->second = Side::kBoth;
  };
  for (const auto& d : net.devices()) {
    const bool a_ext = net.is_external(d.a);
    const bool b_ext = net.is_external(d.b);
    if (a_ext && b_ext) continue;
    const NodeId ext = a_ext ? d.a : d.b;
    const NodeId internal = a_ext ? d.b : d.a;
    if (ext == DpdnNetwork::kNodeX) mark(internal, Side::kX);
    if (ext == DpdnNetwork::kNodeY) mark(internal, Side::kY);
  }

  BranchPartition part;
  for (std::size_t i = 0; i < net.devices().size(); ++i) {
    const Switch& d = net.devices()[i];
    const bool a_ext = net.is_external(d.a);
    const bool b_ext = net.is_external(d.b);
    if (a_ext && b_ext) {
      // Direct external-external device: X-Z or Y-Z (X-Y is malformed).
      const bool touches_x = d.touches(DpdnNetwork::kNodeX);
      const bool touches_y = d.touches(DpdnNetwork::kNodeY);
      SABLE_REQUIRE(d.touches(DpdnNetwork::kNodeZ) && (touches_x != touches_y),
                    "device must connect X-Z or Y-Z");
      (touches_x ? part.x_branch : part.y_branch).push_back(i);
      continue;
    }
    const NodeId internal = a_ext ? d.b : d.a;
    const auto it = side.find(groups.find(internal));
    SABLE_REQUIRE(it != side.end() && it->second != Side::kNone,
                  "internal node not reachable from X or Y");
    SABLE_REQUIRE(it->second != Side::kBoth,
                  "branches share an internal node; network is not genuine");
    (it->second == Side::kX ? part.x_branch : part.y_branch).push_back(i);
  }
  return part;
}

ExprPtr extract_sp_expression(const DpdnNetwork& net,
                              const std::vector<std::size_t>& device_indices,
                              NodeId top) {
  SABLE_REQUIRE(!device_indices.empty(), "branch has no devices");
  std::vector<Edge> edges;
  edges.reserve(device_indices.size());
  for (std::size_t idx : device_indices) {
    const Switch& d = net.devices()[idx];
    ExprPtr lit = Expr::variable(d.gate.var);
    if (!d.gate.positive) lit = Expr::negate(lit);
    edges.push_back(Edge{d.a, d.b, std::move(lit), true});
  }

  const NodeId bottom = DpdnNetwork::kNodeZ;
  auto degree = [&](NodeId n) {
    std::size_t deg = 0;
    for (const auto& e : edges) {
      if (e.alive && (e.u == n || e.v == n)) ++deg;
    }
    return deg;
  };
  // Orients edge `e` so that it reads from `from`: returns the expression
  // top-down starting at `from` and the far endpoint.
  auto oriented = [&](const Edge& e, NodeId from) {
    SABLE_ASSERT(e.u == from || e.v == from, "edge does not touch node");
    if (e.u == from) return std::pair{e.expr, e.v};
    return std::pair{reverse_series(e.expr), e.u};
  };

  std::size_t alive = edges.size();
  bool progress = true;
  while (alive > 1 && progress) {
    progress = false;
    // Parallel reduction: two alive edges with the same endpoint set.
    for (std::size_t i = 0; i < edges.size() && !progress; ++i) {
      if (!edges[i].alive) continue;
      for (std::size_t j = i + 1; j < edges.size(); ++j) {
        if (!edges[j].alive) continue;
        const bool same = (edges[i].u == edges[j].u && edges[i].v == edges[j].v);
        const bool swapped =
            (edges[i].u == edges[j].v && edges[i].v == edges[j].u);
        if (!same && !swapped) continue;
        const ExprPtr other =
            same ? edges[j].expr : reverse_series(edges[j].expr);
        edges[i].expr = Expr::disj2(edges[i].expr, other);
        edges[j].alive = false;
        --alive;
        progress = true;
        break;
      }
    }
    if (progress) continue;
    // Series reduction at an internal node of degree 2.
    for (NodeId n = 0; n < net.node_count() && !progress; ++n) {
      if (net.is_external(n) || degree(n) != 2) continue;
      std::size_t first = SIZE_MAX;
      std::size_t second = SIZE_MAX;
      for (std::size_t i = 0; i < edges.size(); ++i) {
        if (!edges[i].alive || !(edges[i].u == n || edges[i].v == n)) continue;
        if (first == SIZE_MAX) {
          first = i;
        } else {
          second = i;
        }
      }
      // oriented() reads outward from n; reverse the first half so the new
      // edge reads a -> n -> b.
      const auto [n_to_a, a] = oriented(edges[first], n);
      const auto [n_to_b, b] = oriented(edges[second], n);
      if (a == b) continue;  // would create a self-loop; not reducible here
      edges[first].u = a;
      edges[first].v = b;
      edges[first].expr = Expr::conj2(reverse_series(n_to_a), n_to_b);
      edges[second].alive = false;
      --alive;
      progress = true;
    }
  }

  SABLE_REQUIRE(alive == 1,
                "branch is not two-terminal series-parallel reducible");
  for (const auto& e : edges) {
    if (!e.alive) continue;
    SABLE_REQUIRE((e.u == top && e.v == bottom) ||
                      (e.u == bottom && e.v == top),
                  "reduced branch does not span the expected terminals");
    return e.u == top ? e.expr : reverse_series(e.expr);
  }
  SABLE_ASSERT(false, "unreachable: exactly one alive edge exists");
}

}  // namespace sable
