#include "expr/transforms.hpp"

#include "util/error.hpp"

namespace sable {

namespace {

// Computes NNF of e (negated = false) or of !e (negated = true) in one pass.
ExprPtr nnf_impl(const ExprPtr& e, bool negated) {
  switch (e->kind()) {
    case ExprKind::kConst0:
      return Expr::constant(negated);
    case ExprKind::kConst1:
      return Expr::constant(!negated);
    case ExprKind::kVar:
      return negated ? Expr::negate(e) : e;
    case ExprKind::kNot:
      return nnf_impl(e->operands()[0], !negated);
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      const bool is_and = e->kind() == ExprKind::kAnd;
      std::vector<ExprPtr> ops;
      ops.reserve(e->operands().size());
      for (const auto& op : e->operands()) ops.push_back(nnf_impl(op, negated));
      // De Morgan: a negated AND becomes an OR of negated operands.
      const bool result_and = is_and != negated;
      return result_and ? Expr::conj(std::move(ops))
                        : Expr::disj(std::move(ops));
    }
  }
  SABLE_ASSERT(false, "unreachable expression kind");
}

}  // namespace

ExprPtr to_nnf(const ExprPtr& e) { return nnf_impl(e, false); }

ExprPtr complement_nnf(const ExprPtr& e) { return nnf_impl(e, true); }

ExprPtr dual_nnf(const ExprPtr& e) {
  switch (e->kind()) {
    case ExprKind::kConst0:
      return Expr::constant(true);
    case ExprKind::kConst1:
      return Expr::constant(false);
    case ExprKind::kVar:
      return e;
    case ExprKind::kNot:
      SABLE_ASSERT(e->is_literal(), "dual_nnf requires NNF input");
      return e;
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      std::vector<ExprPtr> ops;
      ops.reserve(e->operands().size());
      for (const auto& op : e->operands()) ops.push_back(dual_nnf(op));
      return e->kind() == ExprKind::kAnd ? Expr::disj(std::move(ops))
                                         : Expr::conj(std::move(ops));
    }
  }
  SABLE_ASSERT(false, "unreachable expression kind");
}

ExprPtr cofactor(const ExprPtr& e, VarId v, bool value) {
  switch (e->kind()) {
    case ExprKind::kConst0:
    case ExprKind::kConst1:
      return e;
    case ExprKind::kVar:
      return e->var() == v ? Expr::constant(value) : e;
    case ExprKind::kNot:
      return Expr::negate(cofactor(e->operands()[0], v, value));
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      std::vector<ExprPtr> ops;
      ops.reserve(e->operands().size());
      for (const auto& op : e->operands()) ops.push_back(cofactor(op, v, value));
      return e->kind() == ExprKind::kAnd ? Expr::conj(std::move(ops))
                                         : Expr::disj(std::move(ops));
    }
  }
  SABLE_ASSERT(false, "unreachable expression kind");
}

bool structurally_equal(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return true;
  if (a->kind() != b->kind()) return false;
  if (a->kind() == ExprKind::kVar) return a->var() == b->var();
  const auto& ao = a->operands();
  const auto& bo = b->operands();
  if (ao.size() != bo.size()) return false;
  for (std::size_t i = 0; i < ao.size(); ++i) {
    if (!structurally_equal(ao[i], bo[i])) return false;
  }
  return true;
}

}  // namespace sable
