// Cycle-accurate switch-level simulation of a dynamic differential gate.
//
// Timing model (matches the SPICE testbench in src/sabl):
//   evaluation : clk high, inputs complementary; every DPDN node connected
//                to {X, Y, Z} discharges (X and Y always discharge — one
//                through its branch, the other through bridge M1).
//   precharge  : clk low; during the input-overlap window the old inputs
//                are still complementary, so the same connected set
//                recharges from the supply through the precharge devices;
//                then all inputs return to 0 and disconnected (floating)
//                nodes keep whatever charge they hold.
//
// All widths share one kernel: SablGateSimBatchT<W> simulates
// LaneTraits<W>::kLanes independent gate instances at once (lane L of
// every word is instance L) for any lane word W from util/lane_word.hpp.
// Per-lane energy arithmetic walks the word's 64-bit chunks with exactly
// the historic 64-lane code, so a lane's result is bit-identical for
// every word width. SablGateSimBatch is the 64-lane instantiation, and
// the scalar SablGateSim is its width-1 case.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/network.hpp"
#include "switchsim/gate_model.hpp"
#include "util/lane_word.hpp"

namespace sable {

/// Transposes a batch of scalar assignments into the lane words every
/// batch kernel consumes: lane L of `words[v]` is bit v of
/// `assignments[L]`. `words` must be pre-sized to the variable count (at
/// most 64); lanes at `count` and beyond are cleared. Implemented as a
/// real bit-matrix transpose (64×64 per chunk, or byte bit-planes when
/// the variable count fits a byte) with a single-lane fast path. Each
/// dispatch tier carries its own transpose body — scalar Hacker's
/// Delight, AVX2 ymm delta-swaps + vpmovmskb planes, AVX-512 zmm masked
/// shifts + vpmovb2m, and a GFNI vgf2p8affineqb plane kernel where the
/// CPU has it (cpu_features) — and every body's output is bit-identical
/// to the historic per-bit gather at every width and ragged count.
template <typename W>
void pack_lane_words(const std::uint64_t* assignments, std::size_t count,
                     std::vector<W>& words);

/// Byte-source form for narrow assignments (at most 8 variables): same
/// output as the std::uint64_t form for equal values, but reads 8 lanes
/// per load — the crypto hot path packs S-box inputs through this.
template <typename W>
void pack_lane_words(const std::uint8_t* values, std::size_t count,
                     std::vector<W>& words);

/// The historic per-bit gather, kept as the independently-simple
/// reference implementation: property tests and the pack_transpose bench
/// row compare the transpose against it lane for lane.
template <typename W>
void pack_lane_words_gather(const std::uint64_t* assignments,
                            std::size_t count, std::vector<W>& words);

/// In-place 64×64 bit-matrix transpose of `blocks` consecutive 64-word
/// blocks, through the widest transpose body the runtime dispatch tier
/// allows (the same per-tier kernels the lane packers use). The
/// transpose is an involution — applying it twice restores the input —
/// which is exactly what the corpus codec (io/codec.hpp) needs to turn
/// sample words into RLE-friendly bit planes and back. Non-template on
/// purpose: defined once in the portable TU, whose build carries every
/// tier's body behind function-level target attributes.
void bit_transpose_blocks(std::uint64_t* words, std::size_t blocks);

/// kLanes independent instances of one gate, simulated bit-parallel: per
/// node one charge word (lane L = instance L at VDD level), per cycle one
/// conduction fixpoint over lane words instead of per-lane union-finds.
template <typename W>
class SablGateSimBatchT {
 public:
  static constexpr std::size_t kLanes = LaneTraits<W>::kLanes;

  SablGateSimBatchT(const DpdnNetwork& net, GateEnergyModel model);

  /// Runs one full clock cycle in every lane selected by `lane_mask`.
  /// Lane L of `var_words[v]` is the value of input v in lane L. Writes
  /// the supply energy of lane L into `energy[L]` for selected lanes only;
  /// unselected lanes keep their charge state and energy slot untouched.
  void cycle(const std::vector<W>& var_words, const W& lane_mask,
             double* energy);

  /// Forces every DPDN node charged (`true`) or discharged (`false`) in
  /// every lane.
  void reset(bool charged);

  /// Independent simulator instance over the same network and energy
  /// model, in fresh-construction state — no lane state or scratch is
  /// shared with this instance, so the clone can run on another thread.
  /// The referenced DpdnNetwork must outlive the clone (the sharded
  /// TraceEngine guarantees this by sharing the owning circuit).
  SablGateSimBatchT clone_fresh() const {
    return SablGateSimBatchT(net_, model_);
  }

  /// Per-node charge words after the last cycle (lane L = lane L at VDD).
  const std::vector<W>& node_state_words() const { return charged_; }

  const DpdnNetwork& network() const { return net_; }
  const GateEnergyModel& model() const { return model_; }

 private:
  const DpdnNetwork& net_;
  GateEnergyModel model_;
  std::vector<W> charged_;
  // Per-cycle scratch, kept across calls so the hot path never allocates.
  std::vector<W> masks_;
  std::vector<W> reach_;
  std::vector<W> reach_xz_;  // X–Z closure for the rail extras
};

/// The historic 64-lane kernel (lane L of a word is instance L).
using SablGateSimBatch = SablGateSimBatchT<std::uint64_t>;

class SablGateSim {
 public:
  SablGateSim(const DpdnNetwork& net, GateEnergyModel model);

  /// Runs one full clock cycle with complementary input `assignment`.
  /// Returns the supply energy drawn during the cycle [J].
  double cycle(std::uint64_t assignment);

  /// Forces every DPDN node charged (`true`) or discharged (`false`).
  void reset(bool charged);

  /// Charge state per node after the last cycle (true = at VDD level).
  const std::vector<bool>& node_state() const { return charged_; }

  const DpdnNetwork& network() const { return batch_.network(); }
  const GateEnergyModel& model() const { return batch_.model(); }

 private:
  SablGateSimBatch batch_;  // lane 0 carries this instance
  std::vector<bool> charged_;
  std::vector<std::uint64_t> var_words_;
};

}  // namespace sable
